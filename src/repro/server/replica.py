"""Hot-standby replication: a second machine that can take over the pack.

Section 5.2's file server is one machine and one spindle; when it stops,
the service stops.  This module keeps a warm spare: a **standby** machine
holds a byte-identical copy of the primary's pack and tracks it over the
network, so a crashed primary can be replaced by *promoting* the standby
instead of waiting out a repair and a full offline scavenge of the
original pack.

The protocol has two halves, both riding :mod:`repro.net`:

**Snapshot** (the bootstrap).  Like the Alto's ``OutLoad`` shipping a
core image to a boot server, the primary ships its whole pack image once:
the standby's :class:`~repro.disk.image.DiskImage` is overwritten from a
flushed snapshot of the primary's, and both machines are charged the
wire time of the transfer.  After this instant the packs are identical.

**Sector journal** (the stream).  The primary's drive exposes a
``journal_tap`` -- a callback fired after every part-write lands on the
platter (:meth:`repro.disk.drive.DiskDrive._write_part`).  The tap is the
durability point itself, so the journal is exactly the sequence of
platter mutations, in order, with a sequence number each.  Records are
encoded as words::

    [seq_hi, seq_lo, address, part_code, nwords, word0 .. wordN-1]

and the concatenated record stream is chunked into packets of at most
:data:`~repro.net.network.MAX_PAYLOAD_WORDS` payload words (a value
record is 5 + 256 words -- bigger than one packet -- so the stream, not
the record, is the framing unit).  Each data packet carries its stream
offset; the standby reassembles in order, applies every *complete*
record to its image, and acknowledges the highest applied sequence
number on the reverse path.  A torn tail -- a record cut off by the
primary's crash -- is simply never applied: the standby stops at the
longest whole-record prefix, exactly the discipline
:mod:`repro.fs.journal` uses for directory journals on disk.

**Zero acknowledged loss.**  :class:`ReplicatedFileServer` withholds the
cycle's responses until the standby has acknowledged every journal
record the cycle produced (the *barrier*): a client only sees ``ST_OK``
for a write once that write is on two packs.  Retries of a still-gated
response are suppressed rather than replayed -- the response is released
exactly once, when the ack arrives.  The cost is one extra poll cycle of
response latency (well inside the client's retry timeout); the payoff is
that a primary crash at *any* instant loses no acknowledged write.

**Promotion.**  :func:`promote` drains the journal tail still sitting on
the link, runs the scavenger over the standby pack (the pack is a
write-boundary-consistent prefix of the primary's, which is precisely
the state the scavenger is built to recover), mounts it, and returns a
fresh :class:`~repro.server.engine.FileServer` serving it.  Behind a
:class:`~repro.server.router.ShardRouter`, ``promote_shard`` then swaps
the dead shard for the promoted server; the router's own per-client
replay caches survive, so at-most-once holds across the failover.

>>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
>>> from repro.net import PacketNetwork
>>> from repro.server import FileClient
>>> from repro.server.replica import ReplicaStandby, ReplicatedFileServer
>>> net = PacketNetwork()
>>> fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
>>> net.attach("fileserver", clock=fs.drive.clock)
>>> standby = ReplicaStandby(net, tiny_test_disk())
>>> server = ReplicatedFileServer(fs, net, standby)
>>> _ = server.replication.bootstrap()
>>> net.attach("ws")
>>> client = FileClient(net, "ws",
...                     pump=lambda: (server.poll(), standby.poll())[0])
>>> _ = client.write_file("memo.txt", b"on two packs")
>>> server.replication.standby_lag
0
>>> standby.image.digest() == fs.drive.image.digest()
True
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Set, Tuple

from ..clock import SimClock
from ..disk.drive import DiskDrive
from ..disk.geometry import DiskShape
from ..disk.image import DiskImage
from ..fs.filesystem import FileSystem
from ..fs.scavenger import ScavengeReport, scavenge
from ..net.network import (
    MAX_PAYLOAD_WORDS,
    Packet,
    PacketNetwork,
    TYPE_CONTROL,
    TYPE_DATA,
)
from .engine import FileServer
from .protocol import ST_BUSY, Response, encode_response

#: Words of record header before the part's data words.
RECORD_HEADER_WORDS = 5

#: Journal part codes (the ``part_code`` header word).
PART_CODES = {"header": 0, "label": 1, "value": 2}
_CODE_PARTS = {code: part for part, code in PART_CODES.items()}

#: Data words per journal packet: the stream-offset header takes two.
CHUNK_WORDS = MAX_PAYLOAD_WORDS - 2

#: Simulated CPU the standby charges per applied journal record.
APPLY_CPU_US = 40

#: Words per sector a snapshot ships (header + label + value).
_SECTOR_WORDS = 2 + 7 + 256


# ----------------------------------------------------------------------------
# The journal wire format (pure functions -- also the property-test surface)
# ----------------------------------------------------------------------------

def encode_record(seq: int, address: int, part: str,
                  words: Sequence[int]) -> List[int]:
    """One journal record as words: 5-word header, then the part's data.

    >>> encode_record(1, 9, "label", [7] * 7)[:5]
    [0, 1, 9, 1, 7]
    """
    return [(seq >> 16) & 0xFFFF, seq & 0xFFFF, address,
            PART_CODES[part], len(words), *words]


def decode_stream(words: Sequence[int]) -> Tuple[List[tuple], int]:
    """Parse the longest whole-record prefix of a journal word stream.

    Returns ``(records, consumed)`` where each record is
    ``(seq, address, part, data_words)`` and *consumed* is how many words
    the complete records cover.  A torn tail -- a record the stream cuts
    off mid-way -- is left unconsumed, never half-applied.

    >>> stream = encode_record(1, 5, "header", [1, 2])
    >>> records, consumed = decode_stream(stream + [0, 2, 6])   # torn tail
    >>> records
    [(1, 5, 'header', [1, 2])]
    >>> consumed == len(stream)
    True
    """
    records: List[tuple] = []
    index, total = 0, len(words)
    while total - index >= RECORD_HEADER_WORDS:
        seq = (words[index] << 16) | words[index + 1]
        address = words[index + 2]
        part = _CODE_PARTS.get(words[index + 3])
        nwords = words[index + 4]
        if part is None:
            raise ValueError(
                f"corrupt journal record at stream word {index}: "
                f"part code {words[index + 3]}")
        start = index + RECORD_HEADER_WORDS
        if total - start < nwords:
            break
        records.append((seq, address, part, list(words[start:start + nwords])))
        index = start + nwords
    return records, index


def apply_record(image: DiskImage, address: int, part: str,
                 words: Sequence[int]) -> None:
    """Apply one journal record to *image*, raw (no drive, no timing).

    A record is the absolute post-write state of one sector part, so
    applying it is idempotent; a successful write also heals any torn
    checksum the part carried (mirroring the primary, where a rewrite is
    how a torn part recovers).
    """
    sector = image.sector(address)
    data = list(words)
    if part == "header":
        sector.set_header_words(data)
    elif part == "label":
        sector.set_label_words(data)
    elif part == "value":
        sector.value = data
    else:
        raise ValueError(f"unknown journal part {part!r}")
    image.checksum_bad.discard((address, part))


# ----------------------------------------------------------------------------
# The standby machine
# ----------------------------------------------------------------------------

class ReplicaStandby:
    """The warm spare: a pack image kept current from the journal stream.

    The standby is its own machine -- its own clock, its own network
    host -- holding a bare :class:`~repro.disk.image.DiskImage` (no
    mounted file system: mounting happens at promotion, after a
    scavenge).  :meth:`poll` drains the link, applies whole records, and
    acknowledges the highest applied sequence number.
    """

    def __init__(
        self,
        network: PacketNetwork,
        shape: Optional[DiskShape] = None,
        clock: Optional[SimClock] = None,
        host: str = "standby",
    ) -> None:
        self.network = network
        self.clock = clock if clock is not None else SimClock()
        self.obs = self.clock.obs
        self.host = host
        network.attach(host, queue_limit=4096, clock=self.clock)
        self.image = DiskImage(shape)
        #: The primary's replication host, learned at connect time.
        self.primary_host: Optional[str] = None
        #: Highest journal sequence number applied to the image.
        self.applied_seq = 0
        self._expect = 0                 # next stream word offset
        self._buffer: List[int] = []     # reassembled, not yet whole records
        registry = self.obs.registry
        self._c_applied = registry.counter("replica.applied")
        self._c_stream_words = registry.counter("replica.stream_words")
        self._c_out_of_order = registry.counter("replica.out_of_order")
        self._g_applied_seq = registry.gauge("replica.applied_seq")

    def connect(self, primary_host: str) -> None:
        """Learn where acknowledgements go."""
        self.primary_host = primary_host

    def install(self, snapshot: DiskImage, seq: int) -> None:
        """Adopt a pack snapshot current through journal sequence *seq*."""
        self.image.restore(snapshot)
        self.applied_seq = seq
        self._g_applied_seq.set(seq)

    def poll(self) -> int:
        """Drain the link, apply whole records, ack; returns records applied.

        Packets must arrive in stream order (the network is a FIFO per
        host); a gap -- a dropped journal packet -- stalls the stream and
        counts ``replica.out_of_order``, leaving the primary's lag gauge
        to tell the story.
        """
        while True:
            packet = self.network.receive(self.host)
            if packet is None:
                break
            if packet.ptype != TYPE_DATA or len(packet.payload) < 2:
                continue
            offset = (packet.payload[0] << 16) | packet.payload[1]
            chunk = packet.payload[2:]
            if offset != self._expect:
                self._c_out_of_order.inc()
                continue
            self._buffer.extend(chunk)
            self._expect += len(chunk)
            self._c_stream_words.inc(len(chunk))
        records, consumed = decode_stream(self._buffer)
        if not consumed:
            return 0
        del self._buffer[:consumed]
        applied = 0
        with self.obs.span("replica.apply", "replica", records=len(records)):
            for seq, address, part, words in records:
                if seq <= self.applied_seq:
                    continue        # pre-snapshot overlap: already state
                apply_record(self.image, address, part, words)
                self.applied_seq = seq
                applied += 1
        if applied:
            self.clock.advance_us(APPLY_CPU_US * applied, "replica.apply")
            self._c_applied.inc(applied)
            self._g_applied_seq.set(self.applied_seq)
            if self.primary_host is not None:
                self.network.send(Packet(
                    self.host, self.primary_host, TYPE_CONTROL,
                    ((self.applied_seq >> 16) & 0xFFFF,
                     self.applied_seq & 0xFFFF)))
        return applied

    def __repr__(self) -> str:
        return (f"ReplicaStandby({self.host!r}, "
                f"applied_seq={self.applied_seq})")


# ----------------------------------------------------------------------------
# The primary's half of the link
# ----------------------------------------------------------------------------

class ReplicationPrimary:
    """Captures the primary's platter writes and ships them to a standby.

    Installed by :class:`ReplicatedFileServer`; usable standalone around
    any drive whose mutations should be mirrored.  The tap assigns
    sequence numbers at write time; :meth:`ship` (called once per poll
    cycle, after the flush) moves the accumulated records onto the wire.
    """

    def __init__(self, server: FileServer, network: PacketNetwork,
                 standby: ReplicaStandby) -> None:
        self.server = server
        self.network = network
        self.standby = standby
        self.host = f"{server.host}!repl"
        network.attach(self.host, queue_limit=4096, clock=server.clock)
        standby.connect(self.host)
        #: Sequence number of the newest journaled write.
        self.last_seq = 0
        #: Highest sequence number the standby has acknowledged.
        self.acked_seq = 0
        self._pending: List[List[int]] = []   # encoded, unshipped records
        self._shipped_words = 0               # cumulative stream offset
        registry = server.obs.registry
        self._c_records = registry.counter("replica.records")
        self._c_shipped_words = registry.counter("replica.shipped_words")
        self._c_snapshot_words = registry.counter("replica.snapshot_words")
        self._c_acks = registry.counter("replica.acks")
        self._c_link_drops = registry.counter("replica.link_drops")
        self._g_lag = registry.gauge("replica.standby_lag")
        server.fs.drive.journal_tap = self._tap

    @property
    def standby_lag(self) -> int:
        """Journal records written but not yet acknowledged by the standby."""
        return self.last_seq - self.acked_seq

    def _tap(self, address: int, part: str, data: Sequence[int]) -> None:
        """The drive's durability point: journal one landed part-write."""
        self.last_seq += 1
        self._pending.append(encode_record(self.last_seq, address, part, data))
        self._c_records.inc()

    def bootstrap(self) -> int:
        """Ship the atomic pack snapshot; returns words transferred.

        The primary's cache is flushed first so the snapshot is the
        platter truth, then the standby adopts a copy and both machines
        are charged the bulk transfer's wire time (an ``OutLoad``, not a
        packet stream: the pack moves as one unit, atomically).  Records
        journaled before the snapshot are superseded by it and dropped
        from the ship queue.
        """
        self.server.fs.flush()
        snapshot = self.server.fs.drive.image.snapshot()
        materialized = sum(
            1 for s in snapshot._sectors if s is not None)
        words = materialized * _SECTOR_WORDS
        self._pending.clear()
        self.standby.install(snapshot, self.last_seq)
        self.acked_seq = self.last_seq
        wire_us = words * PacketNetwork.WIRE_US_PER_WORD
        self.server.clock.advance_us(wire_us, "replica.snapshot")
        self.standby.clock.advance_us(wire_us, "replica.snapshot")
        self._c_snapshot_words.inc(words)
        self._g_lag.set(0)
        return words

    def ship(self) -> int:
        """Move accumulated journal records onto the wire; returns words sent.

        Called after the poll cycle's flush, so every shipped record is
        already durable on the primary's own platter -- the journal can
        never run ahead of the pack it describes.
        """
        if not self._pending:
            self._g_lag.set(self.standby_lag)
            return 0
        words: List[int] = []
        for record in self._pending:
            words.extend(record)
        self._pending.clear()
        with self.server.obs.span("replica.ship", "replica",
                                  words=len(words)):
            for start in range(0, len(words), CHUNK_WORDS):
                offset = self._shipped_words + start
                payload = ((offset >> 16) & 0xFFFF, offset & 0xFFFF,
                           *words[start:start + CHUNK_WORDS])
                delivered = self.network.send(Packet(
                    self.host, self.standby.host, TYPE_DATA, payload))
                if not delivered:
                    self._c_link_drops.inc()
        self._shipped_words += len(words)
        self._c_shipped_words.inc(len(words))
        self._g_lag.set(self.standby_lag)
        return len(words)

    def pump_acks(self) -> None:
        """Drain acknowledgements from the standby; update the lag gauge."""
        while True:
            packet = self.network.receive(self.host)
            if packet is None:
                break
            if packet.ptype != TYPE_CONTROL or len(packet.payload) != 2:
                continue
            seq = (packet.payload[0] << 16) | packet.payload[1]
            if seq > self.acked_seq:
                self.acked_seq = seq
                self._c_acks.inc()
        self._g_lag.set(self.standby_lag)


# ----------------------------------------------------------------------------
# The replicated server: responses gated on standby acknowledgement
# ----------------------------------------------------------------------------

@dataclass
class _HeldResponse:
    """One response awaiting the standby's acknowledgement."""

    barrier: int            #: release when acked_seq reaches this
    client: str
    request_id: int
    packets: List[Packet]


class ReplicatedFileServer(FileServer):
    """A :class:`~repro.server.engine.FileServer` that acknowledges a
    request only once the standby holds every platter write it caused.

    Each poll cycle's responses are buffered rather than sent; after the
    cycle's flush and journal ship, they are released if the standby has
    already acknowledged the cycle's final sequence number (the barrier),
    else held until the ack arrives on a later poll.  ``ST_BUSY``
    rejections bypass the gate -- they promise nothing about state.
    Retries of a held response are suppressed: at-most-once delivery of
    the release is the session replay cache's invariant, extended across
    the gate.
    """

    def __init__(
        self,
        fs,
        network: PacketNetwork,
        standby: ReplicaStandby,
        host: str = "fileserver",
        **kwargs,
    ) -> None:
        super().__init__(fs, network, host=host, **kwargs)
        self.replication = ReplicationPrimary(self, network, standby)
        self._held: Deque[_HeldResponse] = deque()
        self._held_rids: Set[Tuple[str, int]] = set()
        self._cycle: List[_HeldResponse] = []
        registry = self.obs.registry
        self._c_released = registry.counter("server.repl.released")
        self._c_suppressed = registry.counter("server.repl.suppressed")
        self._g_held = registry.gauge("server.repl.held")

    # The standby ack is just another event in the engine's cycle: the
    # pre-cycle hook pumps acknowledgements off the link and releases
    # whatever they unlock, the post-cycle hook ships the cycle's journal
    # and sets the barrier.  The post hook is skipped when the cycle
    # raises (the engine's contract), so a crashed primary never ships a
    # journal tail for work it did not acknowledge -- the same property
    # the old hand-rolled poll() override had.

    def _before_cycle(self) -> None:
        self.replication.pump_acks()
        self._release_ready()

    def _after_cycle(self) -> None:
        self.replication.ship()
        barrier = self.replication.last_seq
        for held in self._cycle:
            held.barrier = barrier
            self._held.append(held)
            self._held_rids.add((held.client, held.request_id))
        self._cycle.clear()
        self._release_ready()

    def has_work(self) -> bool:
        """Idle only when nothing is gated: no held responses, no
        unacked journal, no acks waiting on the replication link."""
        return bool(super().has_work()
                    or self._held
                    or self.replication.standby_lag > 0
                    or self.network.pending(self.replication.host))

    def _release_ready(self) -> None:
        """Send every held response whose barrier the standby has acked."""
        acked = self.replication.acked_seq
        while self._held and self._held[0].barrier <= acked:
            held = self._held.popleft()
            self._held_rids.discard((held.client, held.request_id))
            if self.network.attached(held.client):
                for packet in held.packets:
                    self.network.send(packet)
            self._c_released.inc()
        self._g_held.set(len(self._held))

    def _respond(self, client: str, response: Response) -> List[Packet]:
        packets = encode_response(response, self.host, client)
        if self._in_cycle and response.status != ST_BUSY:
            self._cycle.append(_HeldResponse(0, client, response.request_id,
                                             packets))
        else:
            for packet in packets:
                self.network.send(packet)
        return packets

    def _resend(self, client: str, request_id: int,
                packets: List[Packet]) -> None:
        if (client, request_id) in self._held_rids:
            # The original is still gated; releasing it once, on ack, is
            # the at-most-once answer.  The retry gets nothing.
            self._c_suppressed.inc()
            return
        super()._resend(client, request_id, packets)


# ----------------------------------------------------------------------------
# Promotion
# ----------------------------------------------------------------------------

@dataclass
class PromotionReport:
    """What promoting a standby took."""

    server: FileServer           #: the promoted, serving file server
    tail_records: int            #: journal records replayed from the link
    applied_seq: int             #: standby sequence number at promotion
    scavenge: ScavengeReport     #: the recovery pass over the standby pack
    elapsed_us: int              #: simulated promotion time, drain to mount


def promote(
    standby: ReplicaStandby,
    host: Optional[str] = None,
    server_type=FileServer,
    **server_kwargs,
) -> PromotionReport:
    """Turn *standby* into a serving primary.

    Replays the journal tail still queued on the link (shipped by the
    primary but not yet applied), scavenges the standby pack -- it is a
    write-boundary-consistent prefix of the primary's platter, exactly
    the crash state the scavenger recovers -- mounts it, and starts a
    fresh server on the standby's machine.  *host* defaults to the
    standby's own host name; routed clusters then swap the promoted
    server in with :meth:`~repro.server.router.ShardRouter.promote_shard`,
    which repoints the front door without any client noticing.
    """
    clock = standby.clock
    registry = clock.obs.registry
    start_us = clock.now_us
    with clock.obs.span("replica.promote", "replica"):
        tail = standby.poll()
        drive = DiskDrive(standby.image, clock=clock)
        report = scavenge(drive)
        fs = FileSystem.mount(drive)
        serve_host = host if host is not None else standby.host
        if serve_host not in standby.network.hosts():
            standby.network.attach(serve_host, queue_limit=4096, clock=clock)
        server = server_type(fs, standby.network, host=serve_host,
                             **server_kwargs)
    registry.counter("replica.promotions").inc()
    registry.counter("replica.tail_replayed").inc(tail)
    return PromotionReport(server=server, tail_records=tail,
                           applied_seq=standby.applied_seq,
                           scavenge=report,
                           elapsed_us=clock.now_us - start_us)
