"""The file-server wire protocol: explicit request/response framing.

A frame is one header packet (``TYPE_CONTROL``) optionally followed by
continuation packets (``TYPE_DATA``) carrying the rest of the payload
words.  The header packet starts with a fixed seven-word layout:

====  =================  =====================================================
word  name               meaning
====  =================  =====================================================
0     magic              ``MAGIC_REQUEST`` (0x4652) or ``MAGIC_RESPONSE``
                         (0x4653) -- distinguishes the two frame kinds
1     op / status        request opcode (``OP_*``) or response status
                         (``ST_*``)
2     request id         client-chosen, echoed verbatim in the response;
                         the server's at-most-once replay cache is keyed
                         on it, so a retried id never re-executes
3     handle             open-file handle (0 when not applicable)
4     arg0 / result0     OPEN: flags; READ/WRITE: page number;
                         responses: op-specific result (see SERVER.md)
5     arg1 / result1     READ: page count; WRITE: byte length;
                         responses: op-specific result
6     payload words      total payload length in words, across all packets
====  =================  =====================================================

Payload words follow in the same packet (up to the packet limit) and then
in continuation packets.  Frames from one host are reassembled in order by
:class:`FrameAssembler`; frames from different hosts may interleave at
packet granularity.  See ``SERVER.md`` for the full specification.

>>> from repro.net import PacketNetwork
>>> from repro.server.protocol import (FrameAssembler, OP_LIST, Request,
...                                    encode_request)
>>> net = PacketNetwork(); net.attach("ws"); net.attach("srv")
>>> for packet in encode_request(Request(OP_LIST, request_id=7), "ws", "srv"):
...     _ = net.send(packet)
>>> assembler = FrameAssembler()
>>> source, frame = assembler.feed(net.receive("srv"))
>>> source, frame.op == OP_LIST, frame.request_id
('ws', True, 7)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ProtocolError
from ..net.network import MAX_PAYLOAD_WORDS, Packet, TYPE_CONTROL, TYPE_DATA

#: Frame-kind discriminators (ASCII "FR" / "FS", both nonzero 16-bit words).
MAGIC_REQUEST = 0x4652
MAGIC_RESPONSE = 0x4653

#: Fixed header words before the payload.
HEADER_WORDS = 7

#: Request opcodes.
OP_OPEN = 1
OP_READ = 2
OP_WRITE = 3
OP_CLOSE = 4
OP_LIST = 5

OP_NAMES = {OP_OPEN: "open", OP_READ: "read", OP_WRITE: "write",
            OP_CLOSE: "close", OP_LIST: "list"}

#: Response status codes.
ST_OK = 0
ST_BAD_REQUEST = 1          #: malformed frame or out-of-range arguments
ST_NOT_FOUND = 2            #: OPEN without ``FLAG_CREATE`` on a missing name
ST_BAD_HANDLE = 3           #: handle unknown to this session
ST_BUSY = 4                 #: admission queue full -- back off and retry
ST_BAD_PAGE = 5             #: READ/WRITE page outside the writable window
ST_TOO_LARGE = 6            #: payload exceeds the protocol limit
ST_ERROR = 7                #: server-side failure (disk full, I/O error)

ST_NAMES = {ST_OK: "ok", ST_BAD_REQUEST: "bad-request", ST_NOT_FOUND: "not-found",
            ST_BAD_HANDLE: "bad-handle", ST_BUSY: "busy", ST_BAD_PAGE: "bad-page",
            ST_TOO_LARGE: "too-large", ST_ERROR: "error"}

#: OPEN flag: create the file when the name does not exist.
FLAG_CREATE = 1

#: Most pages one READ request may ask for (request batching limit).
MAX_BATCH_PAGES = 8

#: Hard payload bound: the count field is one 16-bit word.
MAX_FRAME_PAYLOAD_WORDS = 0xFFFF


@dataclass(frozen=True)
class Request:
    """One decoded request frame.

    >>> Request(OP_READ, request_id=3, handle=1, arg0=1, arg1=4).op == OP_READ
    True
    """

    op: int
    request_id: int
    handle: int = 0
    arg0: int = 0
    arg1: int = 0
    payload: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.op not in OP_NAMES:
            raise ProtocolError(f"unknown opcode {self.op}")
        if not 1 <= self.request_id <= 0xFFFF:
            raise ProtocolError(f"request id must be 1..65535, got {self.request_id}")
        if len(self.payload) > MAX_FRAME_PAYLOAD_WORDS:
            raise ProtocolError(f"payload of {len(self.payload)} words exceeds "
                                f"{MAX_FRAME_PAYLOAD_WORDS}")

    @property
    def op_name(self) -> str:
        return OP_NAMES[self.op]


@dataclass(frozen=True)
class Response:
    """One decoded response frame.

    >>> Response(ST_OK, request_id=3).ok
    True
    >>> Response(ST_BUSY, request_id=3).status_name
    'busy'
    """

    status: int
    request_id: int
    handle: int = 0
    result0: int = 0
    result1: int = 0
    payload: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.status not in ST_NAMES:
            raise ProtocolError(f"unknown status {self.status}")
        if len(self.payload) > MAX_FRAME_PAYLOAD_WORDS:
            raise ProtocolError(f"payload of {len(self.payload)} words exceeds "
                                f"{MAX_FRAME_PAYLOAD_WORDS}")

    @property
    def ok(self) -> bool:
        return self.status == ST_OK

    @property
    def status_name(self) -> str:
        return ST_NAMES[self.status]


def _encode(magic: int, words: List[int], payload: Tuple[int, ...],
            source: str, destination: str) -> List[Packet]:
    if type(payload) is not tuple:
        payload = tuple(payload)
    header = [magic] + words + [len(payload)]
    room = MAX_PAYLOAD_WORDS - len(header)
    packets = [Packet(source, destination, TYPE_CONTROL,
                      tuple(header) + payload[:room])]
    for base in range(room, len(payload), MAX_PAYLOAD_WORDS):
        packets.append(Packet(source, destination, TYPE_DATA,
                              payload[base: base + MAX_PAYLOAD_WORDS]))
    return packets


def encode_request(request: Request, source: str, destination: str) -> List[Packet]:
    """Encode *request* as its packet sequence (header + continuations).

    >>> packets = encode_request(Request(OP_LIST, request_id=1), "ws", "srv")
    >>> len(packets), packets[0].payload[:3]
    (1, (18002, 5, 1))
    """
    return _encode(MAGIC_REQUEST,
                   [request.op, request.request_id, request.handle,
                    request.arg0, request.arg1],
                   request.payload, source, destination)


def encode_response(response: Response, source: str, destination: str) -> List[Packet]:
    """Encode *response* as its packet sequence (header + continuations).

    >>> packets = encode_response(Response(ST_OK, request_id=9), "srv", "ws")
    >>> len(packets), packets[0].payload[1:3]
    (1, (0, 9))
    """
    return _encode(MAGIC_RESPONSE,
                   [response.status, response.request_id, response.handle,
                    response.result0, response.result1],
                   response.payload, source, destination)


def _decode_header(payload: Tuple[int, ...]):
    if len(payload) < HEADER_WORDS:
        raise ProtocolError(f"header packet has only {len(payload)} words, "
                            f"need {HEADER_WORDS}")
    magic = payload[0]
    if magic not in (MAGIC_REQUEST, MAGIC_RESPONSE):
        raise ProtocolError(f"bad frame magic {magic:#x}")
    return magic, payload[1:HEADER_WORDS], payload[HEADER_WORDS:]


def _build(magic: int, header, payload: Tuple[int, ...]):
    op_or_status, request_id, handle, a0, a1 = header
    if magic == MAGIC_REQUEST:
        return Request(op_or_status, request_id, handle, a0, a1, payload)
    return Response(op_or_status, request_id, handle, a0, a1, payload)


@dataclass
class _Partial:
    magic: int
    header: Tuple[int, ...]
    expected: int
    payload: List[int] = field(default_factory=list)


class FrameAssembler:
    """Reassembles frames from a packet stream, keyed by source host.

    A new header packet from a host discards any incomplete frame from the
    same host (the ``abandoned`` counter records it); packets from
    different hosts may interleave freely.

    >>> from repro.net import PacketNetwork
    >>> net = PacketNetwork(); net.attach("a"); net.attach("srv")
    >>> data = tuple(range(300))                    # forces a continuation
    >>> request = Request(OP_WRITE, request_id=2, handle=1, payload=data)
    >>> packets = [net.receive("srv")
    ...            for p in encode_request(request, "a", "srv")
    ...            if net.send(p)]
    >>> assembler = FrameAssembler()
    >>> frames = [f for f in map(assembler.feed, packets) if f is not None]
    >>> frames[0][1].payload == data
    True
    """

    def __init__(self) -> None:
        self._partials: Dict[str, _Partial] = {}
        #: Frames discarded because a new header arrived mid-frame.
        self.abandoned = 0
        #: Packets ignored because they belong to no frame.
        self.stray = 0

    def feed(self, packet: Packet) -> Optional[Tuple[str, object]]:
        """Consume one packet; return ``(source, frame)`` when one completes."""
        source = packet.source
        if packet.ptype == TYPE_CONTROL:
            if source in self._partials:
                self.abandoned += 1
                del self._partials[source]
            magic, header, first = _decode_header(packet.payload)
            expected = header[-1]  # word 6: the announced payload length
            partial = _Partial(magic, header, expected, list(first))
            if len(partial.payload) > expected:
                raise ProtocolError(
                    f"frame announced {expected} payload words but the header "
                    f"packet already carries {len(partial.payload)}")
            self._partials[source] = partial
        elif packet.ptype == TYPE_DATA:
            partial = self._partials.get(source)
            if partial is None:
                self.stray += 1
                return None
            partial.payload.extend(packet.payload)
            if len(partial.payload) > partial.expected:
                del self._partials[source]
                raise ProtocolError(
                    f"frame from {source!r} overran its announced "
                    f"{partial.expected} payload words")
        else:
            self.stray += 1
            return None
        if len(partial.payload) == partial.expected:
            del self._partials[source]
            return source, _build(partial.magic, partial.header[:5],
                                  tuple(partial.payload))
        return None
