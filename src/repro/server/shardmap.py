"""Name-to-shard routing: a deterministic hash map over file names.

"Folding a Tree into a Map" replaces directory-walk retrieval with a
single map lookup at the front door; this module is that map.  A file
name is hashed into one of :data:`DEFAULT_SLOTS` **slots** (a stable,
seed-keyed FNV-1a hash -- no Python ``hash()``, which is salted per
process), and each slot is assigned to exactly one shard.  Routing is
therefore a pure function of ``(seed, slots, assignment)``: rebuilding a
:class:`ShardMap` from the same parameters after a router restart routes
every name to the same shard, which is what makes the router stateless
about placement.

Rebalancing moves *slots*, not names: a :class:`RebalancePlan` reassigns
one slot from its current shard to another, and the names in that slot --
and only those -- move with it.  Applying a plan is a permutation of the
name universe across shards: no name is lost, none is duplicated
(``tests/server/test_shardmap_props.py`` proves all three properties with
hypothesis).

>>> shard_map = ShardMap(shards=4, seed=1979)
>>> shard_map.shard_of("memo.txt") == shard_map.shard_of("memo.txt")
True
>>> 0 <= shard_map.shard_of("memo.txt") < 4
True
>>> ShardMap(shards=4, seed=1979).shard_of("memo.txt") == shard_map.shard_of("memo.txt")
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

#: Slots in the hash ring; slots, not names, are the unit of rebalancing.
#: 64 slots over at most 8 shards keeps every shard's share adjustable in
#: ~1.6% steps while the assignment table stays one cache line.
DEFAULT_SLOTS = 64

#: FNV-1a 32-bit parameters (deterministic across processes and restarts).
_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193


def hash_name(name: str, seed: int = 0) -> int:
    """The stable 32-bit FNV-1a hash of a file name, mixed with *seed*.

    Names are folded case-insensitively, matching the directory's
    case-insensitive lookup -- ``Memo.txt`` and ``memo.txt`` are the same
    file, so they must land on the same shard.

    >>> hash_name("memo.txt") == hash_name("MEMO.TXT")
    True
    >>> hash_name("memo.txt", seed=1) != hash_name("memo.txt", seed=2)
    True
    """
    value = _FNV_OFFSET ^ (seed & 0xFFFFFFFF)
    for byte in name.lower().encode("utf-8"):
        value = ((value ^ byte) * _FNV_PRIME) & 0xFFFFFFFF
    return value


@dataclass(frozen=True)
class RebalancePlan:
    """One slot move: ``slot`` leaves ``source`` for ``target``.

    The plan is pure data -- applying it to the map is
    :meth:`ShardMap.apply`; actually shipping the slot's files between
    packs is :mod:`repro.server.rebalance`.

    >>> plan = ShardMap(shards=2).plan_move(slot=2, target=1)
    >>> plan.slot, plan.target
    (2, 1)
    """

    slot: int
    source: int
    target: int


class ShardMap:
    """The router's name-to-shard map: hash to a slot, look the slot up.

    >>> shard_map = ShardMap(shards=2, seed=7)
    >>> names = [f"f{i}.dat" for i in range(8)]
    >>> all(0 <= shard_map.shard_of(n) <= 1 for n in names)
    True
    >>> target = 1 - shard_map.shard_of("f0.dat")
    >>> shard_map.apply(shard_map.plan_move(shard_map.slot_of("f0.dat"), target))
    >>> shard_map.shard_of("f0.dat") == target
    True
    """

    def __init__(self, shards: int, seed: int = 1979,
                 slots: int = DEFAULT_SLOTS) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if slots < shards:
            raise ValueError(f"{slots} slots cannot cover {shards} shards")
        self.shards = shards
        self.seed = seed
        self.slots = slots
        #: slot -> shard; round-robin striping spreads consecutive slots.
        self.assignment: List[int] = [slot % shards for slot in range(slots)]
        #: Bumped on every applied plan; the router stamps in-flight
        #: requests with it so retries route by their admission epoch.
        self.epoch = 0

    # -- routing ----------------------------------------------------------------

    def slot_of(self, name: str) -> int:
        """The slot *name* hashes into (stable across restarts).

        >>> m = ShardMap(shards=2)
        >>> m.slot_of("a.txt") == ShardMap(shards=2).slot_of("a.txt")
        True
        """
        return hash_name(name, self.seed) % self.slots

    def shard_of(self, name: str) -> int:
        """The shard currently serving *name* -- exactly one, always.

        >>> 0 <= ShardMap(shards=3).shard_of("b.txt") < 3
        True
        """
        return self.assignment[self.slot_of(name)]

    def slot_shard(self, slot: int) -> int:
        """The shard currently assigned *slot*.

        >>> ShardMap(shards=2).slot_shard(1)
        1
        """
        return self.assignment[slot]

    def shard_slots(self, shard: int) -> List[int]:
        """Every slot assigned to *shard*.

        >>> ShardMap(shards=2, slots=4).shard_slots(0)
        [0, 2]
        """
        return [slot for slot, owner in enumerate(self.assignment)
                if owner == shard]

    def names_in_slot(self, names: Iterable[str], slot: int) -> List[str]:
        """The subset of *names* that hash into *slot*, in input order.

        >>> m = ShardMap(shards=1)
        >>> names = ["a.txt", "b.txt"]
        >>> sum(len(m.names_in_slot(names, s)) for s in range(m.slots))
        2
        """
        return [name for name in names if self.slot_of(name) == slot]

    # -- rebalancing -------------------------------------------------------------

    def plan_move(self, slot: int, target: int) -> RebalancePlan:
        """Plan moving *slot* to shard *target* (a no-op move is an error).

        >>> ShardMap(shards=2).plan_move(0, 1)
        RebalancePlan(slot=0, source=0, target=1)
        """
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} outside 0..{self.slots - 1}")
        if not 0 <= target < self.shards:
            raise ValueError(f"shard {target} outside 0..{self.shards - 1}")
        source = self.assignment[slot]
        if source == target:
            raise ValueError(f"slot {slot} already lives on shard {target}")
        return RebalancePlan(slot=slot, source=source, target=target)

    def apply(self, plan: RebalancePlan) -> None:
        """Commit a plan: the slot's names now route to ``plan.target``.

        >>> m = ShardMap(shards=2); m.apply(m.plan_move(0, 1)); m.slot_shard(0)
        1
        """
        if self.assignment[plan.slot] != plan.source:
            raise ValueError(
                f"slot {plan.slot} is on shard {self.assignment[plan.slot]}, "
                f"not {plan.source}: stale plan")
        self.assignment[plan.slot] = plan.target
        self.epoch += 1

    # -- introspection -------------------------------------------------------------

    def placement(self, names: Sequence[str]) -> Dict[str, int]:
        """Every name's shard, as one dict (each name exactly once).

        >>> m = ShardMap(shards=2)
        >>> sorted(m.placement(["x", "y"])) == ["x", "y"]
        True
        """
        return {name: self.shard_of(name) for name in names}

    def counts(self, names: Iterable[str]) -> List[int]:
        """How many of *names* each shard serves (index = shard).

        >>> sum(ShardMap(shards=3).counts(f"n{i}" for i in range(30)))
        30
        """
        out = [0] * self.shards
        for name in names:
            out[self.shard_of(name)] += 1
        return out

    def __repr__(self) -> str:
        return (f"ShardMap(shards={self.shards}, slots={self.slots}, "
                f"seed={self.seed}, epoch={self.epoch})")
