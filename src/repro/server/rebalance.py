"""Crash-safe slot shipping: moving a name range between shard packs.

A rebalance moves every file of one :class:`~repro.server.shardmap.ShardMap`
slot from the source shard's pack to the target's.  Each pack is an
independently verifiable replica unit (the LOCKSS stance), so the protocol
must leave every moving name **intact on exactly one pack** no matter
where a crash lands.  It reuses the atomic-OutLoad discipline
(shadow-then-rename is the commit point) at pack-shipping scale:

1. **stage** -- copy each moving file to the target pack under its
   ``!ship`` temp name, then flush: the copies are durably complete;
2. **commit** -- write the shipment manifest (slot, shards, names) to a
   shadow file, flush, rename it to :data:`MANIFEST_NAME`, flush.  The
   rename is the commit point: before it the shipment legally never
   happened, after it the shipment legally happened;
3. **expose** -- rename each temp to its final name on the target;
4. **retire** -- delete each original from the source;
5. **clean** -- delete the manifest.

:func:`recover_shipment` makes any crash state converge: a committed
manifest is rolled *forward* (finish steps 3-5), anything else is rolled
*back* (delete temps; the source copies were never touched).  Either way
each name ends on exactly one pack and the surviving
:class:`~repro.server.shardmap.ShardMap` side is decidable from the
manifest's presence alone.  :func:`rebalance_crash_sweep` proves this at
every part-write of the whole protocol across **both** packs
(``python -m repro crashtest --rebalance``).

>>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
>>> source = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
>>> target = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
>>> _ = source.create_file("moving.txt").write_data(b"pack cargo")
>>> shipment = ship_names(source, target, ["moving.txt"], slot=3)
>>> shipment.names
['moving.txt']
>>> target.open_file("moving.txt").read_data()
b'pack cargo'
>>> "moving.txt" in source.list_files()
False
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import FileNotFound, ReproError
from ..fs.filesystem import FileSystem
from ..words import random_bytes

#: The durable commit record on the *target* pack.  Its existence is the
#: whole commit state: present = roll forward, absent = roll back.
MANIFEST_NAME = "ShipManifest"

#: Shadow the manifest is staged under before the commit rename.
MANIFEST_SHADOW = MANIFEST_NAME + "!new"

#: Temp-name suffix for staged copies on the target pack.
SHIP_SUFFIX = "!ship"


@dataclass(frozen=True)
class Shipment:
    """One decoded shipment manifest.

    >>> Shipment(slot=3, source=0, target=1, names=["a.txt"]).slot
    3
    """

    slot: int
    source: int
    target: int
    names: List[str]

    def encode(self) -> bytes:
        """The manifest's on-pack byte format (one field per line).

        >>> Shipment(1, 0, 1, ["a"]).encode()
        b'slot 1\\nsource 0\\ntarget 1\\na'
        """
        head = f"slot {self.slot}\nsource {self.source}\ntarget {self.target}"
        return "\n".join([head] + list(self.names)).encode("utf-8")

    @classmethod
    def decode(cls, data: bytes) -> "Shipment":
        """Parse :meth:`encode` output (raises ``ValueError`` when torn).

        >>> Shipment.decode(Shipment(1, 0, 1, ["a"]).encode()).names
        ['a']
        """
        lines = data.decode("utf-8").split("\n")
        if len(lines) < 3:
            raise ValueError("manifest too short")
        slot = int(lines[0].split()[1])
        source = int(lines[1].split()[1])
        target = int(lines[2].split()[1])
        return cls(slot=slot, source=source, target=target,
                   names=[line for line in lines[3:] if line])


def _delete_if_present(fs: FileSystem, name: str) -> bool:
    try:
        fs.delete_file(name)
        return True
    except FileNotFound:
        return False


def _variants(fs: FileSystem, name: str) -> List[str]:
    """*name* plus any scavenger-rescued ``name!N`` aliases present."""
    lowered = name.lower()
    out = []
    for candidate in fs.list_files():
        folded = candidate.lower()
        if folded == lowered or folded.startswith(lowered + "!"):
            out.append(candidate)
    return out


def _copy_file(source_fs: FileSystem, target_fs: FileSystem,
               name: str, new_name: str) -> int:
    """Whole-file copy (read one pack, write the other); returns bytes."""
    data = source_fs.open_file(name).read_data()
    for stale in _variants(target_fs, new_name):
        _delete_if_present(target_fs, stale)
    target_fs.create_file(new_name).write_data(data)
    return len(data)


def ship_names(source_fs: FileSystem, target_fs: FileSystem,
               names: Sequence[str], slot: int,
               source: int = 0, target: int = 1) -> Shipment:
    """Run the five-step shipping protocol for *names*; returns the shipment.

    *source*/*target* are the shard indices recorded in the manifest (the
    router passes its own; standalone callers can leave the defaults).
    Both file systems are flushed at every durability point, so the
    protocol is crash-safe on write-back drives too.
    """
    shipment = Shipment(slot=slot, source=source, target=target,
                        names=list(names))
    obs = target_fs.drive.clock.obs
    with obs.span("router.rebalance", "router", slot=slot,
                  files=len(shipment.names)):
        # 1. stage: durable complete copies under temp names.
        for name in shipment.names:
            _copy_file(source_fs, target_fs, name, name + SHIP_SUFFIX)
        target_fs.flush()
        # 2. commit: manifest shadow, flush, rename (the commit point).
        _delete_if_present(target_fs, MANIFEST_SHADOW)
        target_fs.create_file(MANIFEST_SHADOW).write_data(shipment.encode())
        target_fs.flush()
        _delete_if_present(target_fs, MANIFEST_NAME)
        target_fs.rename_file(MANIFEST_SHADOW, MANIFEST_NAME)
        target_fs.flush()
        # 3-5. expose, retire, clean -- identical to the roll-forward path.
        _finish_shipment(source_fs, target_fs, shipment)
    obs.counter("router.rebalances").inc()
    return shipment


def _finish_shipment(source_fs: FileSystem, target_fs: FileSystem,
                     shipment: Shipment) -> None:
    """Steps 3-5, written to be idempotent (the roll-forward replays them)."""
    for name in shipment.names:
        finals = [v for v in _variants(target_fs, name)
                  if not v.lower().startswith(name.lower() + SHIP_SUFFIX)]
        temps = _variants(target_fs, name + SHIP_SUFFIX)
        if finals:
            # Already exposed (we are re-running after a crash): drop temps.
            for temp in temps:
                _delete_if_present(target_fs, temp)
        elif temps:
            # Expose the staged copy; extra rescued temp variants go away.
            target_fs.rename_file(temps[0], name)
            for temp in temps[1:]:
                _delete_if_present(target_fs, temp)
    target_fs.flush()
    for name in shipment.names:
        for stale in _variants(source_fs, name):
            _delete_if_present(source_fs, stale)
    source_fs.flush()
    for manifest in _variants(target_fs, MANIFEST_NAME):
        _delete_if_present(target_fs, manifest)
    target_fs.flush()


def recover_shipment(source_fs: FileSystem,
                     target_fs: FileSystem) -> Optional[Shipment]:
    """Converge a possibly crashed shipment; both packs already scavenged.

    Returns the committed :class:`Shipment` when the manifest survived
    (the move is rolled forward and the slot belongs to the target), or
    ``None`` when it did not (staged temps are rolled back and the slot
    stays with the source).

    >>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
    >>> a = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
    >>> b = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
    >>> recover_shipment(a, b) is None       # nothing in flight: a no-op
    True
    """
    manifest_data: Optional[bytes] = None
    try:
        manifest_data = target_fs.open_file(MANIFEST_NAME).read_data()
    except ReproError:
        manifest_data = None
    if manifest_data is not None:
        try:
            shipment = Shipment.decode(manifest_data)
        except (ValueError, IndexError, UnicodeDecodeError):
            # A manifest that does not parse cannot have been committed:
            # the commit rename happens only after its data is durably
            # complete.  Treat it as uncommitted wreckage.
            shipment = None
        if shipment is not None:
            _finish_shipment(source_fs, target_fs, shipment)
            return shipment
    # Roll back: no committed manifest -- delete staged wreckage; the
    # source copies were never touched before the commit point.
    for name in list(target_fs.list_files()):
        folded = name.lower()
        if SHIP_SUFFIX in folded or folded.startswith(MANIFEST_NAME.lower()):
            _delete_if_present(target_fs, name)
    target_fs.flush()
    return None


# ----------------------------------------------------------------------------
# The exhaustive rebalance crash sweep (``python -m repro crashtest --rebalance``)
# ----------------------------------------------------------------------------


class _TaggedPlan:
    """Builds a :class:`~repro.disk.faults.FaultPlan` subclass whose write
    stream is logged into a shared, globally ordered list -- the coordinate
    system for crash points spanning two packs."""

    @staticmethod
    def make(image, seed: int, tag: str, log: List[str]):
        from ..disk.faults import FaultPlan

        class Tagged(FaultPlan):
            def before_part(self, drive, address, part, action):
                if action == "write" and not self.crashed:
                    log.append(tag)
                super().before_part(drive, address, part, action)

        return Tagged(image, seed=seed)


def _build_shipping_lab(seed: int, cylinders: int):
    """Two deterministic packs plus the moving name set.

    The source pack gets ten files; the slot chosen to move is the one
    holding the most of them (at least two with the default seed), so the
    sweep exercises multi-file shipments.
    """
    import random

    from ..disk.drive import DiskDrive
    from ..disk.geometry import tiny_test_disk
    from ..disk.image import DiskImage
    from .shardmap import ShardMap

    source_image = DiskImage(tiny_test_disk(cylinders=cylinders))
    target_image = DiskImage(tiny_test_disk(cylinders=cylinders))
    source_fs = FileSystem.format(DiskDrive(source_image))
    target_fs = FileSystem.format(DiskDrive(target_image))
    rng = random.Random(seed)
    contents: Dict[str, bytes] = {}
    for i in range(10):
        name = f"ship{i}.dat"
        data = random_bytes(rng, rng.randrange(80, 1500))
        source_fs.create_file(name).write_data(data)
        contents[name] = data
    stay = random_bytes(rng, 700)
    target_fs.create_file("resident.dat").write_data(stay)
    source_fs.sync()
    target_fs.sync()

    shard_map = ShardMap(shards=2, seed=seed)
    by_slot: Dict[int, List[str]] = {}
    for name in contents:
        by_slot.setdefault(shard_map.slot_of(name), []).append(name)
    slot = max(by_slot, key=lambda s: (len(by_slot[s]), -s))
    moving = sorted(by_slot[slot])
    return (source_image, target_image, contents, {"resident.dat": stay},
            slot, moving)


@dataclass
class ShipmentReport:
    """One crash point's recovery verdict."""

    crash_point: int
    crash_reason: str = ""
    rolled: str = ""  # "forward" or "back"
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def note(self, problem: str) -> None:
        self.problems.append(problem)

    def __str__(self) -> str:
        status = "ok" if self.ok else "; ".join(self.problems)
        return f"crash@{self.crash_point} rolled {self.rolled or '?'}: {status}"


@dataclass
class ShipmentSweepResult:
    """Outcome of the whole rebalance crash sweep."""

    total_writes: int = 0
    points_tested: int = 0
    reports: List[ShipmentReport] = field(default_factory=list)

    @property
    def failures(self) -> List[ShipmentReport]:
        return [r for r in self.reports if not r.ok]

    @property
    def ok(self) -> bool:
        return self.points_tested > 0 and not self.failures

    def summary(self) -> str:
        verdict = "all recovered" if self.ok else f"{len(self.failures)} FAILED"
        forward = sum(1 for r in self.reports if r.rolled == "forward")
        return (f"{self.points_tested}/{self.total_writes} shipping crash "
                f"points swept: {verdict} ({forward} rolled forward, "
                f"{self.points_tested - forward} rolled back)")


def _check_shipping_recovery(
    source_image, target_image, moving: Sequence[str],
    source_contents: Dict[str, bytes], target_contents: Dict[str, bytes],
    report: ShipmentReport,
) -> None:
    """Scavenge, recover, and assert every shipping invariant."""
    from ..disk.drive import DiskDrive
    from ..fs.fsck import check_image
    from ..fs.scavenger import Scavenger

    try:
        Scavenger(DiskDrive(source_image)).scavenge()
        Scavenger(DiskDrive(target_image)).scavenge()
        source_fs = FileSystem.mount(DiskDrive(source_image))
        target_fs = FileSystem.mount(DiskDrive(target_image))
        shipment = recover_shipment(source_fs, target_fs)
    except ReproError as exc:
        report.note(f"recovery failed: {type(exc).__name__}: {exc}")
        return
    report.rolled = "forward" if shipment is not None else "back"
    if shipment is not None and sorted(shipment.names) != sorted(moving):
        report.note(f"manifest names {shipment.names} != moving set {moving}")

    # The invariant: every moving name intact on exactly one pack -- and
    # all on the *same* pack, so the slot stays whole.  A crash after the
    # manifest was cleaned up legitimately recovers as "back" even though
    # the shipment completed, so the winner is found per name, not
    # assumed from the roll direction.
    source_names = set(source_fs.list_files())
    target_names = set(target_fs.list_files())
    homes = set()
    for name in moving:
        on_source, on_target = name in source_names, name in target_names
        if on_source and on_target:
            report.note(f"{name}: present on BOTH packs after recovery")
            continue
        if not on_source and not on_target:
            report.note(f"{name}: lost -- on neither pack after recovery")
            continue
        winner_fs = source_fs if on_source else target_fs
        homes.add("source" if on_source else "target")
        try:
            found = winner_fs.open_file(name).read_data()
        except ReproError as exc:
            report.note(f"{name}: unreadable after recovery ({type(exc).__name__})")
            continue
        if found != source_contents[name]:
            report.note(f"{name}: contents changed in shipping "
                        f"({len(found)} bytes found)")
    if len(homes) > 1:
        report.note(f"moving names split across packs: {sorted(homes)}")

    # Files outside the moving range never move and never change.
    for name, data in source_contents.items():
        if name in moving:
            continue
        try:
            if source_fs.open_file(name).read_data() != data:
                report.note(f"{name}: bystander source file changed")
        except ReproError as exc:
            report.note(f"{name}: bystander source file lost ({type(exc).__name__})")
    for name, data in target_contents.items():
        try:
            if target_fs.open_file(name).read_data() != data:
                report.note(f"{name}: bystander target file changed")
        except ReproError as exc:
            report.note(f"{name}: bystander target file lost ({type(exc).__name__})")

    # No protocol residue survives recovery.
    for name in source_fs.list_files() + target_fs.list_files():
        lowered = name.lower()
        if SHIP_SUFFIX in lowered or lowered.startswith(MANIFEST_NAME.lower()):
            report.note(f"protocol residue {name!r} survived recovery")

    # Both packs pass the read-only fsck (the replica-unit property).
    for label, img in (("source", source_image), ("target", target_image)):
        for issue in check_image(img).issues:
            if issue.kind not in ("ragged-end",):
                report.note(f"fsck[{label}]: {issue}")


def rebalance_crash_sweep(
    seed: int = 1979,
    cylinders: int = 20,
    tear: bool = False,
    points: Optional[Sequence[int]] = None,
    on_point: Optional[Callable[[ShipmentReport], None]] = None,
    cached: bool = False,
) -> ShipmentSweepResult:
    """Crash pack shipping at every part-write across both packs.

    Writes on the two drives are globally ordered by a shared log, so
    crash point N means "the Nth write the whole protocol performed,
    whichever pack it landed on".  Each point replays the shipment from
    image snapshots with the crash (clean, or torn with *tear*) scheduled
    there, scavenges **both** packs, runs :func:`recover_shipment`, and
    checks that the moving names survive intact on exactly one pack.
    """
    from ..disk.drive import DiskDrive

    def make_drive(image, plan):
        if cached:
            from ..disk.cache import CachedDrive

            return CachedDrive(image, fault_injector=plan)
        return DiskDrive(image, fault_injector=plan)

    (source_image, target_image, source_contents, target_contents,
     slot, moving) = _build_shipping_lab(seed, cylinders)
    source_base = source_image.snapshot()
    target_base = target_image.snapshot()

    def run_shipment(log: List[str], plans: List) -> None:
        source_plan = _TaggedPlan.make(source_image, seed, "s", log)
        target_plan = _TaggedPlan.make(target_image, seed + 1, "t", log)
        plans.extend([source_plan, target_plan])
        source_fs = FileSystem.mount(make_drive(source_image, source_plan))
        target_fs = FileSystem.mount(make_drive(target_image, target_plan))
        ship_names(source_fs, target_fs, moving, slot)

    # Pass 1: no faults; the log becomes the global write order.
    order: List[str] = []
    run_shipment(order, [])
    total = len(order)

    result = ShipmentSweepResult(total_writes=total)
    chosen = list(points) if points is not None else list(range(1, total + 1))
    from ..errors import PowerFailure

    for n in chosen:
        if not 1 <= n <= total:
            raise ValueError(f"crash point {n} outside 1..{total}")
        source_image.restore(source_base)
        target_image.restore(target_base)
        local = order[:n].count(order[n - 1])
        log: List[str] = []
        plans: List = []
        report = ShipmentReport(crash_point=n)
        try:
            # Schedule on the right pack's plan once both exist; mounting
            # performs no writes, so scheduling before the run is safe.
            source_plan = _TaggedPlan.make(source_image, seed, "s", log)
            target_plan = _TaggedPlan.make(target_image, seed + 1, "t", log)
            victim = source_plan if order[n - 1] == "s" else target_plan
            (victim.tear_at_write if tear else victim.crash_at_write)(local)
            source_fs = FileSystem.mount(make_drive(source_image, source_plan))
            target_fs = FileSystem.mount(make_drive(target_image, target_plan))
            ship_names(source_fs, target_fs, moving, slot)
            report.note(f"fault at global write {n} never fired")
        except PowerFailure as exc:
            report.crash_reason = str(exc)
        _check_shipping_recovery(source_image, target_image, moving,
                                 source_contents, target_contents, report)
        result.reports.append(report)
        result.points_tested += 1
        if on_point is not None:
            on_point(report)
    return result
