"""The PR-5 polling engine, kept alive as a differential reference.

:class:`PolledFileServer` is the round-robin loop the event-driven
engine replaced: every poll scans *all* clients in first-admission
order, serving ``quantum`` requests per client per pass until the
backlog drains or the budget runs out.  It shares every other code path
with :class:`~repro.server.engine.FileServer` -- ingest, admission,
dispatch, flush, timers -- so the only difference under test is the
scheduler itself.

The point of keeping it is the observational-equivalence property
(``tests/server/test_engine_equivalence.py``): in the default
configuration the event-driven engine must produce the same responses,
the same pack bytes, and the same simulated microseconds as this loop,
per seed.  That property is what let the engine restructure land
without re-litigating every byte-identical proof in the suite.

>>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
>>> from repro.net import PacketNetwork
>>> from repro.server import FileClient
>>> from repro.server.polled import PolledFileServer
>>> fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
>>> net = PacketNetwork(clock=fs.drive.clock)
>>> net.attach("fileserver"); net.attach("ws")
>>> server = PolledFileServer(fs, net)
>>> client = FileClient(net, "ws", pump=server.poll)
>>> _ = client.write_file("memo.txt", b"the reference answer")
>>> client.read_file("memo.txt")
b'the reference answer'
"""

from __future__ import annotations

from typing import Optional, Tuple

from .engine import FileServer
from .qos import QOS_INTERACTIVE


class PolledFileServer(FileServer):
    """The pre-event-engine scheduler: scan everyone, every pass.

    Identical wire behaviour to :class:`~repro.server.engine.FileServer`
    in the default configuration; kept as the reference twin for the
    equivalence property suite.  QoS weights are ignored -- this loop
    predates them -- which is exactly what makes it the control arm for
    the QoS isolation benchmark (E17).
    """

    def _run_scheduler(self, budget: Optional[int]) -> Tuple[int, bool]:
        served = 0
        wrote = False
        while self._pending and (budget is None or served < budget):
            for client in sorted(self._queues,
                                 key=self._client_seq.__getitem__):
                queue = self._queues.get(client)
                if not queue:
                    continue
                if not self.network.attached(client):
                    self._evict(client)
                    continue
                self._c_wakeups.inc()
                cls = self._qos.get(client, QOS_INTERACTIVE)
                for _ in range(min(self.quantum, len(queue))):
                    if budget is not None and served >= budget:
                        break
                    request, admitted_us = self._take(client, cls, queue)
                    wrote |= self._service(client, request, admitted_us)
                    served += 1
            if budget is not None and served >= budget:
                break
        return served, wrote

    def __repr__(self) -> str:
        return (f"PolledFileServer({self.host!r}, "
                f"sessions={len(self.sessions)}, pending={self._pending})")
