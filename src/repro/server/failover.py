"""The failover drill: kill the primary mid-load, promote, prove zero loss.

The claim replication (:mod:`repro.server.replica`) makes is sharp: a
primary crash at *any* instant loses no acknowledged write, and no
request is ever executed twice on the surviving service.  This module
proves it the way the repo proves every durability claim -- by crashing
at **every** part-write the primary performs and checking the invariants
at each point (``python -m repro failover``; compare the scavenger's
``crashtest`` and the rebalance sweep).

One drill (:func:`failover_drill`) builds a deterministic lab:

* a primary :class:`~repro.server.replica.ReplicatedFileServer` behind a
  :class:`~repro.server.router.ShardRouter`, with incremental
  scavenge/compaction (:class:`~repro.fs.online.OnlineMaintenance`)
  interleaving with service -- the always-on configuration;
* a :class:`~repro.server.replica.ReplicaStandby` fed a snapshot and the
  live sector journal;
* one client station writing a seeded batch of files page by page,
  recording each page only once its ``ST_OK`` arrives -- the *acked set*,
  the drill's ground truth.

A :class:`~repro.disk.faults.FaultPlan` kills the primary's drive at the
chosen part-write.  The drill then promotes the standby (replaying the
journal tail queued on the link), swaps it into the router, and checks:

1. **Zero acknowledged loss** -- every page in the acked set is on the
   promoted pack, byte for byte.
2. **At-most-once across failover** -- a retry of a pre-crash completed
   request is answered from the router's surviving replay cache
   (``router.replayed`` advances; the promoted server never sees it).
3. **Service resumes** -- the interrupted file is rewritten (absolute
   page writes are idempotent, so re-execution of an unacknowledged
   write is safe), the rest of the workload runs, and a full read-back
   of every file matches, with the promoted pack passing
   :func:`~repro.fs.fsck.check_image`.

:func:`failover_crash_sweep` runs the drill at every crash point (pass 1
counts the writes, pass 2 replays each point from a fresh lab -- the
same two-pass pattern as :func:`~repro.server.rebalance.rebalance_crash_sweep`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..disk.drive import DiskDrive
from ..disk.faults import FaultPlan
from ..disk.geometry import tiny_test_disk
from ..disk.image import DiskImage
from ..errors import PowerFailure, RequestFailed
from ..fs.file import FULL_PAGE
from ..fs.filesystem import FileSystem
from ..fs.fsck import check_image
from ..fs.online import ONLINE_TOLERATED_ISSUES, OnlineMaintenance
from ..net.network import PacketNetwork
from ..words import words_to_bytes
from .client import FileClient, PendingRequest
from .replica import ReplicaStandby, ReplicatedFileServer, promote
from .router import ShardRouter

PRIMARY_HOST = "shard00"
STANDBY_HOST = "standby00"
CLIENT_HOST = "ws000"

#: Files the drill's workload writes (name, seeded size range).
WORKLOAD_FILES = 6
WORKLOAD_MIN_BYTES = 120
WORKLOAD_MAX_BYTES = 1900

#: Issue kinds a live, serving pack may show (see repro.fs.online); the
#: scavenger does not rewrite directory page hints, so stale hints are
#: tolerated too (they self-heal through the hint ladder), and so are
#: the lab's seeded garbage labels while the patrol is still reaching
#: them (the promoted pack is always fully scavenged, so they never
#: survive a failover).
_TOLERATED = set(ONLINE_TOLERATED_ISSUES) | {"stale-entry-hint",
                                             "garbage-label"}

#: Structurally garbage labels seeded on the primary pack for the patrol
#: to find: in use, but without the ordinary-file serial flag.
SEEDED_GARBAGE_LABELS = 10


# ----------------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------------

@dataclass
class FailoverReport:
    """One crash point's failover verdict."""

    crash_point: int
    crash_reason: str = ""
    acked_pages: int = 0         #: pages acknowledged before the crash
    tail_records: int = 0        #: journal records replayed at promotion
    promotion_us: int = 0        #: simulated promotion time
    replay_probe: bool = False   #: retry answered from the replay cache
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def note(self, problem: str) -> None:
        self.problems.append(problem)

    def __str__(self) -> str:
        status = "ok" if self.ok else "; ".join(self.problems)
        return (f"crash@{self.crash_point} acked={self.acked_pages} "
                f"tail={self.tail_records} "
                f"promotion={self.promotion_us / 1000:.1f}ms: {status}")


@dataclass
class FailoverSweepResult:
    """Outcome of the whole failover crash sweep."""

    total_writes: int = 0
    points_tested: int = 0
    reports: List[FailoverReport] = field(default_factory=list)

    @property
    def failures(self) -> List[FailoverReport]:
        return [r for r in self.reports if not r.ok]

    @property
    def ok(self) -> bool:
        return self.points_tested > 0 and not self.failures

    def summary(self) -> str:
        verdict = ("zero acked writes lost" if self.ok
                   else f"{len(self.failures)} FAILED")
        fired = sum(1 for r in self.reports if r.crash_reason)
        worst = max((r.promotion_us for r in self.reports), default=0)
        return (f"{self.points_tested}/{self.total_writes} failover crash "
                f"points swept ({fired} fired): {verdict}; worst promotion "
                f"{worst / 1000:.1f}ms")


# ----------------------------------------------------------------------------
# The lab
# ----------------------------------------------------------------------------

class _Lab:
    """One deterministic failover lab: cluster, standby, client, workload."""

    def __init__(self, seed: int, cylinders: int, maintain: bool) -> None:
        self.seed = seed
        self.maintain = maintain
        shape = tiny_test_disk(cylinders=cylinders)
        self.image = DiskImage(shape)
        # Format with a throwaway drive so the sweep's write coordinates
        # cover only the served workload, not pack setup.
        FileSystem.format(DiskDrive(self.image))
        self._seed_wear(seed)
        self.plan = FaultPlan(self.image, seed=seed)
        drive = DiskDrive(self.image, fault_injector=self.plan)
        fs = FileSystem.mount(drive)
        self.network = PacketNetwork()
        self.network.attach(PRIMARY_HOST, clock=drive.clock)
        self.standby = ReplicaStandby(self.network,
                                      tiny_test_disk(cylinders=cylinders),
                                      host=STANDBY_HOST)
        self.primary = ReplicatedFileServer(fs, self.network, self.standby,
                                            host=PRIMARY_HOST)
        if maintain:
            # Continuous patrol: the maintainer keeps sweeping for as long
            # as the machine is up, so its map syncs are always producing
            # journal traffic -- which is what puts a real replayable tail
            # on the link when the crash lands between ship and apply.
            self.primary.maintenance = OnlineMaintenance(fs, continuous=True)
        self.router = ShardRouter([self.primary], self.network)
        self.network.attach(CLIENT_HOST)
        self.client = FileClient(self.network, CLIENT_HOST, pump=self.cycle)
        self.promoted = False
        self._cycles = 0
        self.files = workload_files(seed)

    def _seed_wear(self, seed: int) -> None:
        """Scatter structurally garbage labels over the fresh pack.

        They model a torn past life for the maintenance patrol to find:
        each repair is a pair of journaled part-writes, so the drill's
        crash sweep gets points where maintenance traffic -- not just
        client traffic -- is what must survive the failover.
        """
        from ..disk.sector import Label

        rng = random.Random(seed ^ 0x0DD)
        total = self.image.shape.total_sectors()
        untouched = [address for address in range(2, total)
                     if self.image._sectors[address] is None]
        for address in rng.sample(untouched,
                                  min(SEEDED_GARBAGE_LABELS, len(untouched))):
            # In use (serial is neither free nor bad) yet unparseable
            # (no ordinary-serial flag): exactly what the sweep frees.
            self.image.sector(address).set_label_words(
                Label(serial=0x0042, version=1, page_number=1,
                      length=0).pack())

    def cycle(self) -> int:
        """One cluster cycle: the router, and the standby every other turn.

        The standby lagging by a cycle is the interesting schedule: a
        crash then leaves shipped-but-unapplied journal records queued on
        the link, which promotion must replay (the ``tail_records`` the
        report counts).
        """
        served = self.router.poll()
        self._cycles += 1
        if not self.promoted and self._cycles % 2 == 0:
            self.standby.poll()
        return served


def workload_files(seed: int) -> List[Tuple[str, bytes]]:
    """The drill's seeded workload: deterministic names and contents."""
    rng = random.Random(seed ^ 0x5EED)
    files = []
    for index in range(WORKLOAD_FILES):
        size = rng.randrange(WORKLOAD_MIN_BYTES, WORKLOAD_MAX_BYTES)
        files.append((f"drill{index}.dat",
                      bytes(rng.randrange(256) for _ in range(size))))
    return files


def _page_chunks(data: bytes) -> List[Tuple[int, bytes]]:
    """The upload schedule: full pages, then the (possibly empty) tail."""
    n_full = len(data) // FULL_PAGE
    chunks = [(page, data[(page - 1) * FULL_PAGE: page * FULL_PAGE])
              for page in range(1, n_full + 1)]
    chunks.append((n_full + 1, data[n_full * FULL_PAGE:]))
    return chunks


def _await(client: FileClient, pending: PendingRequest):
    """Pump-and-wait like ``FileClient.transact``, keeping *pending* ours
    (the drill reuses its packets as the at-most-once probe)."""
    while True:
        if client.pump is not None:
            client.pump()
        response = client.step(pending)
        if response is not None:
            if not response.ok:
                raise RequestFailed(
                    f"{pending.request.op_name} failed: "
                    f"{response.status_name}", response)
            return response
        client.clock.advance_us(client.poll_interval_us, "server.client.wait")


# ----------------------------------------------------------------------------
# The drill
# ----------------------------------------------------------------------------

def failover_drill(
    seed: int = 1979,
    cylinders: int = 20,
    crash_at: Optional[int] = None,
    maintain: bool = True,
) -> FailoverReport:
    """Run one drill; crash the primary at part-write *crash_at* (None: never).

    Returns a :class:`FailoverReport`; ``report.ok`` is the verdict.  With
    no crash scheduled the drill is the always-on smoke test: the full
    workload runs with maintenance slices interleaved and replication
    gating every response, then the read-back and pack check still run.
    """
    lab = _Lab(seed, cylinders, maintain)
    if crash_at is not None:
        lab.plan.crash_at_write(crash_at)
    report = FailoverReport(crash_point=crash_at or 0)
    client = lab.client
    acked: Dict[Tuple[str, int], bytes] = {}
    done: Set[str] = set()
    probe: Optional[PendingRequest] = None

    crashed = False
    progress = 0
    try:
        lab.primary.replication.bootstrap()
        for name, data in lab.files:
            handle, _ = client.open(name, create=True)
            for page, chunk in _page_chunks(data):
                request = client.build_write(handle, page, chunk)
                pending = client.submit(request)
                _await(client, pending)
                acked[(name, page)] = chunk
                probe = pending
            client.close(handle)
            done.add(name)
            progress += 1
    except PowerFailure as exc:
        crashed = True
        report.crash_reason = str(exc)
    report.acked_pages = len(acked)

    if crashed:
        replayed_before = lab.router.stats().get("router.replayed", 0)
        promo = promote(lab.standby)
        lab.router.promote_shard(0, promo.server)
        if lab.maintain:
            promo.server.maintenance = OnlineMaintenance(promo.server.fs)
        lab.promoted = True
        report.tail_records = promo.tail_records
        report.promotion_us = promo.elapsed_us
        _verify_acked(promo.server.fs, acked, report)
        if probe is not None:
            _probe_replay(lab, probe, replayed_before, report)
        # Resume: rewrite the interrupted file from page one (absolute
        # page writes make re-execution of unacknowledged work safe),
        # then finish the remaining files.
        for name, data in lab.files[progress:]:
            _upload(client, name, data)
    elif crash_at is not None:
        report.note(f"crash at part-write {crash_at} never fired")

    _verify_readback(lab, report)
    _verify_pack(lab, report)
    return report


def _upload(client: FileClient, name: str, data: bytes) -> None:
    handle, _ = client.open(name, create=True)
    for page, chunk in _page_chunks(data):
        _await(client, client.submit(client.build_write(handle, page, chunk)))
    client.close(handle)


def _verify_acked(fs: FileSystem, acked: Dict[Tuple[str, int], bytes],
                  report: FailoverReport) -> None:
    """Invariant 1: every acknowledged page is on the promoted pack."""
    by_file: Dict[str, List[int]] = {}
    for name, page in acked:
        by_file.setdefault(name, []).append(page)
    for name, pages in sorted(by_file.items()):
        try:
            file = fs.open_file(name)
        except Exception as exc:
            report.note(f"acked file {name} lost at failover "
                        f"({type(exc).__name__})")
            continue
        last = file.last_page_number
        for page in sorted(pages):
            chunk = acked[(name, page)]
            if page > last:
                report.note(f"acked page {name}:{page} lost at failover")
                continue
            contents = file.read_page(page)
            got = words_to_bytes(contents.value, nbytes=max(len(chunk), 1))
            if got[:len(chunk)] != chunk:
                report.note(f"acked page {name}:{page} corrupt at failover")


def _probe_replay(lab: _Lab, probe: PendingRequest, replayed_before: int,
                  report: FailoverReport) -> None:
    """Invariant 2: a pre-crash retry hits the surviving replay cache."""
    client = lab.client
    for packet in probe.packets:
        lab.network.send(packet)
    response = None
    for _ in range(64):
        lab.cycle()
        response = client._check_arrivals(probe)
        if response is not None:
            break
        client.clock.advance_us(client.poll_interval_us, "server.client.wait")
    if response is None or not response.ok:
        report.note("replay probe: pre-crash request got no cached answer")
        return
    replayed_after = lab.router.stats().get("router.replayed", 0)
    if replayed_after <= replayed_before:
        report.note("replay probe: answer was not served from the cache")
        return
    report.replay_probe = True


def _verify_readback(lab: _Lab, report: FailoverReport) -> None:
    """Invariant 3: the whole workload reads back through the front door."""
    for name, data in lab.files:
        try:
            got = lab.client.read_file(name)
        except Exception as exc:
            report.note(f"read-back of {name} failed "
                        f"({type(exc).__name__}: {exc})")
            continue
        if got != data:
            report.note(f"read-back of {name} mismatches "
                        f"({len(got)} vs {len(data)} bytes)")


def _verify_pack(lab: _Lab, report: FailoverReport) -> None:
    """The serving pack is structurally sound (live-tolerated kinds aside)."""
    image = lab.standby.image if lab.promoted else lab.image
    for issue in check_image(image).issues:
        if issue.kind not in _TOLERATED:
            report.note(f"pack check: {issue.kind} at {issue.address} "
                        f"({issue.detail})")


# ----------------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------------

def failover_crash_sweep(
    seed: int = 1979,
    cylinders: int = 20,
    points: Optional[Sequence[int]] = None,
    maintain: bool = True,
    on_point: Optional[Callable[[FailoverReport], None]] = None,
) -> FailoverSweepResult:
    """Crash the primary at every part-write of the drill; verify each.

    Pass 1 runs the drill clean to count the primary's part-writes; pass
    2 replays the drill from a fresh lab per point with the crash
    scheduled there.  *points* restricts the sweep (1-based, as
    ``FaultPlan.crash_at_write`` counts).
    """
    clean = failover_drill(seed, cylinders, crash_at=None, maintain=maintain)
    if not clean.ok:
        raise RuntimeError(f"clean drill failed: {'; '.join(clean.problems)}")
    # The clean pass's lab is gone; count writes with a probe lab run the
    # same way.  FaultPlan counts every part-write it sees.
    probe_lab_writes = _count_writes(seed, cylinders, maintain)
    result = FailoverSweepResult(total_writes=probe_lab_writes)
    chosen = (list(points) if points is not None
              else list(range(1, probe_lab_writes + 1)))
    for n in chosen:
        if not 1 <= n <= probe_lab_writes:
            raise ValueError(
                f"crash point {n} outside 1..{probe_lab_writes}")
        report = failover_drill(seed, cylinders, crash_at=n,
                                maintain=maintain)
        result.reports.append(report)
        result.points_tested += 1
        if on_point is not None:
            on_point(report)
    return result


def _count_writes(seed: int, cylinders: int, maintain: bool) -> int:
    """How many part-writes the primary performs in a clean drill."""
    lab = _Lab(seed, cylinders, maintain)
    lab.primary.replication.bootstrap()
    for name, data in lab.files:
        _upload(lab.client, name, data)
    return lab.plan.writes_seen
