"""The client side: framing, timeout, retry with exponential backoff.

:class:`FileClient` issues protocol requests and waits for matching
responses.  Three things can go wrong on the wire, and the client absorbs
all of them deterministically:

* a request or response **packet is dropped** (a full receive queue --
  datagram semantics): the client times out and resends the *same*
  request id, which the server answers from its replay cache without
  re-executing;
* the server answers **``ST_BUSY``** (admission queue full): the client
  waits out an exponentially growing backoff before resending --
  optionally de-synchronized by a deterministic seeded jitter
  (``backoff_jitter``, off by default so pinned golden runs are
  byte-identical);
* a **stale response** arrives for an id the client gave up on: it is
  discarded by id matching.

The waiting loop advances simulated time in ``poll_interval_us`` steps and
calls the optional ``pump`` callable (normally ``server.poll``) so the
server runs -- in this single-threaded simulation the client's wait loop
*is* the machine's idle loop.

>>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
>>> from repro.net import PacketNetwork
>>> from repro.server import FileClient, FileServer
>>> fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
>>> net = PacketNetwork(clock=fs.drive.clock)
>>> net.attach("fileserver"); net.attach("ws")
>>> server = FileServer(fs, net)
>>> client = FileClient(net, "ws", pump=server.poll)
>>> _ = client.write_file("greeting.txt", b"hello")
>>> sorted(client.listdir())[:2]
['DiskDescriptor', 'SysDir']
>>> client.read_file("greeting.txt")
b'hello'
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from ..errors import RequestFailed, RequestTimeout
from ..fs.file import FULL_PAGE
from ..net.network import PacketNetwork
from ..words import bytes_to_words, string_to_words, words_to_bytes
from .protocol import (
    FLAG_CREATE,
    FrameAssembler,
    MAX_BATCH_PAGES,
    OP_CLOSE,
    OP_LIST,
    OP_OPEN,
    OP_READ,
    OP_WRITE,
    Request,
    Response,
    ST_BUSY,
    ST_NAMES,
    ST_OK,
    encode_request,
)

#: Words of file data per page (a page is 256 words / 512 bytes).
PAGE_WORDS = FULL_PAGE // 2

#: Default client timing parameters (simulated microseconds).
DEFAULT_TIMEOUT_US = 40_000
DEFAULT_BACKOFF_US = 5_000
DEFAULT_POLL_INTERVAL_US = 1_000
DEFAULT_MAX_RETRIES = 8


class PendingRequest:
    """One in-flight request: its packets and retry state."""

    __slots__ = ("request", "packets", "first_sent_us", "last_sent_us",
                 "attempts", "backoff_us", "resend_at_us")

    def __init__(self, request: Request, packets, now_us: int,
                 backoff_us: int) -> None:
        self.request = request
        self.packets = packets
        self.first_sent_us = now_us
        self.last_sent_us = now_us
        self.attempts = 1
        self.backoff_us = backoff_us
        #: When set, a scheduled resend (the ST_BUSY backoff path).
        self.resend_at_us: Optional[int] = None


class FileClient:
    """A session's client half: request framing plus the retry discipline.

    High-level operations (:meth:`read_file`, :meth:`write_file`,
    :meth:`listdir`) are built from the five protocol requests; the
    request *builders* (``build_open`` and friends) are public so load
    generators can drive many clients concurrently at frame granularity.
    """

    def __init__(
        self,
        network: PacketNetwork,
        host: str,
        server: str = "fileserver",
        pump: Optional[Callable] = None,
        timeout_us: int = DEFAULT_TIMEOUT_US,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_us: int = DEFAULT_BACKOFF_US,
        backoff_factor: int = 2,
        poll_interval_us: int = DEFAULT_POLL_INTERVAL_US,
        read_batch_pages: int = MAX_BATCH_PAGES,
        backoff_jitter: float = 0.0,
        jitter_seed: int = 1979,
    ) -> None:
        self.network = network
        self.host = host
        self.server = server
        self.pump = pump
        self.clock = network.clock
        self.timeout_us = timeout_us
        self.max_retries = max_retries
        self.backoff_us = backoff_us
        self.backoff_factor = backoff_factor
        self.poll_interval_us = poll_interval_us
        self.read_batch_pages = min(read_batch_pages, MAX_BATCH_PAGES)
        if not 0.0 <= backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0.0, 1.0]")
        self.backoff_jitter = backoff_jitter
        # Deterministic per-station jitter stream: seeded from (seed, host)
        # so every run with the same seed replays byte-identically, yet two
        # stations sharing a seed still de-synchronize from each other.
        # None when jitter is off (the default), so the un-jittered resend
        # schedule -- and every golden pinned to it -- is untouched.
        self._jitter = (random.Random(f"{jitter_seed}:{host}")
                        if backoff_jitter > 0.0 else None)
        self.assembler = FrameAssembler()
        self._next_id = 1
        self.obs = self.clock.obs
        registry = self.obs.registry
        self._c_requests = registry.counter("server.client.requests")
        self._c_retries = registry.counter("server.client.retries")
        self._c_busy = registry.counter("server.client.busy_retries")
        self._c_stale = registry.counter("server.client.stale_replies")

    # ------------------------------------------------------------------------
    # Request builders (used directly by the load generator)
    # ------------------------------------------------------------------------

    def _take_id(self) -> int:
        request_id = self._next_id
        self._next_id = request_id % 0xFFFF + 1
        return request_id

    def build_open(self, name: str, create: bool = False) -> Request:
        return Request(OP_OPEN, self._take_id(),
                       arg0=FLAG_CREATE if create else 0,
                       payload=tuple(string_to_words(name)))

    def build_read(self, handle: int, first_page: int, count: int) -> Request:
        return Request(OP_READ, self._take_id(), handle=handle,
                       arg0=first_page, arg1=count)

    def build_write(self, handle: int, page: int, data: bytes) -> Request:
        if len(data) > FULL_PAGE:
            raise ValueError(f"one WRITE carries at most {FULL_PAGE} bytes")
        return Request(OP_WRITE, self._take_id(), handle=handle, arg0=page,
                       arg1=len(data), payload=tuple(bytes_to_words(data)))

    def build_close(self, handle: int) -> Request:
        return Request(OP_CLOSE, self._take_id(), handle=handle)

    def build_list(self) -> Request:
        return Request(OP_LIST, self._take_id())

    # ------------------------------------------------------------------------
    # The send / wait / retry machinery
    # ------------------------------------------------------------------------

    def submit(self, request: Request) -> PendingRequest:
        """Send *request*; returns the pending-state handle for :meth:`step`."""
        packets = encode_request(request, self.host, self.server)
        for packet in packets:
            self.network.send(packet)
        self._c_requests.inc()
        return PendingRequest(request, packets, self.clock.now_us,
                              self.backoff_us)

    def step(self, pending: PendingRequest) -> Optional[Response]:
        """Advance one pending request: check arrivals, time out, resend.

        Returns the matching response when it has arrived; None while the
        request is still outstanding.  Raises
        :class:`~repro.errors.RequestTimeout` once retries are exhausted.
        """
        now = self.clock.now_us
        response = self._check_arrivals(pending)
        if response is not None:
            if response.status == ST_BUSY:
                self._c_busy.inc()
                self._schedule_resend(pending, now)
                return None
            tracer = self.obs.tracer
            if tracer.enabled:
                # The whole client-visible request, first send to matched
                # response, on this station's own track of the shared
                # network clock's lane.  Every client station records its
                # requests under one trace_id key the router and shard
                # spans share, which is what stitches the lanes together.
                request = pending.request
                tracer.complete(
                    f"client.{request.op_name.lower()}",
                    pending.first_sent_us, now,
                    category="client",
                    track=tracer.track(f"client {self.host}"),
                    args={"trace_id": f"{self.host}#{request.request_id}",
                          "rid": request.request_id,
                          "client": self.host,
                          "attempts": pending.attempts,
                          "status": ST_NAMES.get(response.status,
                                                 str(response.status))})
            return response
        if pending.resend_at_us is not None:
            if now >= pending.resend_at_us:
                self._resend(pending, now)
            return None
        if now - pending.last_sent_us >= self.timeout_us:
            self._c_retries.inc()
            self._schedule_resend(pending, now, immediately=True)
        return None

    def _check_arrivals(self, pending: PendingRequest) -> Optional[Response]:
        while True:
            packet = self.network.receive(self.host)
            if packet is None:
                return None
            completed = self.assembler.feed(packet)
            if completed is None:
                continue
            _, frame = completed
            if (not isinstance(frame, Response)
                    or frame.request_id != pending.request.request_id):
                self._c_stale.inc()
                continue
            return frame

    def _schedule_resend(self, pending: PendingRequest, now: int,
                         immediately: bool = False) -> None:
        if pending.attempts > self.max_retries:
            raise RequestTimeout(
                f"request {pending.request.request_id} "
                f"({pending.request.op_name}) got no answer after "
                f"{pending.attempts} attempts")
        if immediately:
            self._resend(pending, now)
        else:
            delay = pending.backoff_us
            if self._jitter is not None:
                # Subtractive ("decorrelated early") jitter: back off up to
                # backoff_jitter earlier than the nominal delay, never later,
                # so a herd of stations rejected by the same busy poll
                # spreads out instead of re-colliding in lockstep.  The
                # geometric growth of the *nominal* backoff is untouched.
                spread = int(delay * self.backoff_jitter)
                if spread:
                    delay -= self._jitter.randrange(spread + 1)
            pending.resend_at_us = now + delay
            pending.backoff_us *= self.backoff_factor

    def _resend(self, pending: PendingRequest, now: int) -> None:
        for packet in pending.packets:
            self.network.send(packet)
        pending.attempts += 1
        pending.last_sent_us = now
        pending.resend_at_us = None

    def transact(self, request: Request) -> Response:
        """Submit and wait: pump the server, advance time, retry, return.

        Raises :class:`~repro.errors.RequestFailed` on any non-OK status
        (after the busy/retry discipline has run its course).
        """
        pending = self.submit(request)
        while True:
            if self.pump is not None:
                self.pump()
            response = self.step(pending)
            if response is not None:
                if not response.ok:
                    raise RequestFailed(
                        f"{request.op_name} failed: {response.status_name}",
                        response)
                return response
            self.clock.advance_us(self.poll_interval_us, "server.client.wait")

    # ------------------------------------------------------------------------
    # High-level file operations
    # ------------------------------------------------------------------------

    def open(self, name: str, create: bool = False) -> Tuple[int, int]:
        """OPEN *name*; returns ``(handle, byte_length)``."""
        response = self.transact(self.build_open(name, create=create))
        return response.handle, (response.result0 << 16) | response.result1

    def close(self, handle: int) -> None:
        self.transact(self.build_close(handle))

    def listdir(self) -> List[str]:
        """The server directory's file names."""
        from ..words import words_to_string

        response = self.transact(self.build_list())
        names, words, index = [], list(response.payload), 0
        while index < len(words):
            count = words[index]
            names.append(words_to_string(words[index + 1: index + 1 + count]))
            index += 1 + count
        return names

    def read_file(self, name: str) -> bytes:
        """Fetch a whole file with batched sequential READs."""
        handle, size = self.open(name)
        try:
            return self.read_range(handle, size)
        finally:
            self.close(handle)

    def read_range(self, handle: int, size: int, first_page: int = 1) -> bytes:
        """Read *size* bytes starting at *first_page* via batched READs."""
        out = bytearray()
        page = first_page
        remaining = size
        while remaining > 0:
            want = min(self.read_batch_pages,
                       (remaining + FULL_PAGE - 1) // FULL_PAGE)
            response = self.transact(self.build_read(handle, page, want))
            pages = response.result0
            if pages == 0:
                break
            words = list(response.payload)
            for index in range(pages):
                page_words = words[index * PAGE_WORDS: (index + 1) * PAGE_WORDS]
                take = min(remaining, FULL_PAGE)
                out += words_to_bytes(page_words, nbytes=take)
                remaining -= take
            page += pages
        return bytes(out)

    def write_file(self, name: str, data: bytes) -> int:
        """Create-or-replace *name* with *data*; returns bytes written.

        Pages stream sequentially and always end with a short tail page
        (possibly empty), mirroring ``AltoFile.write_data`` -- the server
        promotes full staged pages as the next page arrives.
        """
        handle, size = self.open(name, create=True)
        try:
            n_full = len(data) // FULL_PAGE
            for page in range(1, n_full + 1):
                chunk = data[(page - 1) * FULL_PAGE: page * FULL_PAGE]
                self.transact(self.build_write(handle, page, chunk))
            self.transact(self.build_write(
                handle, n_full + 1, data[n_full * FULL_PAGE:]))
            return len(data)
        finally:
            self.close(handle)
