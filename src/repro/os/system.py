"""The operating system facade: a collection of packages in one machine.

Section 5: "The operating system is a collection of commonly used
subroutine packages that are normally present in memory for the convenience
of user programs."  ``AltoOS`` assembles the packages -- file system,
streams, zones, swapping, loader, Executive -- over one machine and one
drive, wires the Junta level map to them, and gates each service on its
level's residency.

Every component remains independently constructible (the openness
property); this facade is merely the convenient standard assembly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..disk.drive import DiskDrive
from ..errors import FileNotFound, JuntaError
from ..fs.filesystem import FileSystem
from ..fs.scavenger import ScavengeReport, Scavenger
from ..memory.zone import Zone
from ..streams.base import Stream
from ..streams.disk_stream import open_read_stream, open_write_stream
from ..streams.display import DisplayDevice, display_stream
from ..streams.keyboard import KeyboardDevice
from ..world.machine import Machine
from ..world.swap import Halt, ProgramRegistry, WorldEngine, WorldProgram
from .executive import Executive
from .junta import JuntaController
from .kbdproc import KeyboardProcess, buffered_keyboard_stream
from .loader import ExecutableRegistry, ProgramLoader


class AltoOS:
    """One booted system: machine + mounted file system + packages."""

    def __init__(
        self,
        drive: DiskDrive,
        machine: Optional[Machine] = None,
        format_disk: bool = False,
    ) -> None:
        self.drive = drive
        if format_disk:
            self.fs = FileSystem.format(drive)
        else:
            self.fs = FileSystem.mount(drive)
        self.machine = machine if machine is not None else Machine()
        self.junta = JuntaController(self.machine.memory)

        # Level 2: the keyboard buffer, resident in the level's own region.
        self.keyboard_device: KeyboardDevice = self.machine.keyboard
        self.keyboard_process = KeyboardProcess(self.junta.regions[2], self.keyboard_device)
        self.junta.set_initializer(2, lambda _region: self.keyboard_process.initialize())

        # Level 11/10: display and keyboard streams.
        self.display: DisplayDevice = self.machine.display
        self.display_stream: Stream = display_stream(self.display)
        self.keyboard_stream: Stream = buffered_keyboard_stream(self.keyboard_process)

        # Level 13: the system free-storage zone.
        self.system_zone = Zone(self.junta.regions[13], "system")
        self.junta.set_initializer(
            13, lambda region: setattr(self, "system_zone", Zone(region, "system"))
        )

        # Swapping, loading, commands.
        self.programs = ProgramRegistry()
        self.engine = WorldEngine(self.machine, self.fs, self.programs)
        self.executables = ExecutableRegistry()
        self.loader = ProgramLoader(self.machine, self.junta, self.executables)
        self.executive = Executive(self)

    # ------------------------------------------------------------------------
    # Construction conveniences
    # ------------------------------------------------------------------------

    @classmethod
    def format(cls, drive: DiskDrive, machine: Optional[Machine] = None) -> "AltoOS":
        return cls(drive, machine=machine, format_disk=True)

    @classmethod
    def mount(cls, drive: DiskDrive, machine: Optional[Machine] = None) -> "AltoOS":
        return cls(drive, machine=machine)

    # ------------------------------------------------------------------------
    # Service-gated package access
    # ------------------------------------------------------------------------

    def read_stream(self, name: str, **kwargs) -> Stream:
        """Open a read disk stream (requires levels 8 and 9)."""
        self.junta.require_service("disk-stream")
        self.junta.require_service("directory")
        return open_read_stream(self.fs.open_file(name), **kwargs)

    def write_stream(self, name: str, create: bool = True, **kwargs) -> Stream:
        """Open a write disk stream, creating the file by default."""
        self.junta.require_service("disk-stream")
        self.junta.require_service("directory")
        try:
            file = self.fs.open_file(name)
        except FileNotFound:
            if not create:
                raise
            file = self.fs.create_file(name)
        return open_write_stream(file, **kwargs)

    def new_zone(self, nwords: int, name: str = "user") -> Zone:
        """Allocate a fresh zone from system free storage (level 7 + 13)."""
        self.junta.require_service("zone-object")
        self.junta.require_service("system-zone")
        address = self.system_zone.allocate(nwords)
        return Zone(self.machine.memory.region(address, nwords), name)

    def scavenge(self) -> ScavengeReport:
        """Run the Scavenger, then remount and rewire the file system."""
        report = Scavenger(self.drive).scavenge()
        self.fs = FileSystem.mount(self.drive)
        self.engine.fs = self.fs
        self.engine.swapper.fs = self.fs
        self.engine.swapper.forget_files()
        return report

    # ------------------------------------------------------------------------
    # Junta / CounterJunta
    # ------------------------------------------------------------------------

    def call_junta(self, keep_up_to: int):
        """Remove levels above *keep_up_to*; returns the freed region.

        The caller now owns that memory ("A programmer desiring even more
        flexibility is encouraged to remove most of the system ... and to
        incorporate copies of the standard packages in his own program").
        """
        return self.junta.junta(keep_up_to)

    def call_counter_junta(self) -> None:
        """Restore the standard system after a program finishes."""
        self.junta.counter_junta()

    # ------------------------------------------------------------------------
    # The system as a world (section 5.1)
    # ------------------------------------------------------------------------

    def install_system_world(self, file_name: str = "AltoOS.world") -> None:
        """Save the operating system itself as a state file.

        Section 5.1: "Programs that run under the operating system may also
        be invoked from an entirely different programming environment.  The
        InLoad procedure is invoked on the file that contains the operating
        system state, which causes the system to be loaded and initialized.
        The message vector passed to InLoad may contain the name of a file
        containing the program to be invoked.  A stream is opened on this
        file, and the program is loaded and run."

        The registered ``alto-os`` world program implements exactly that
        entry: an empty message runs the Executive on whatever is typed
        ahead; a message carrying a BCPL-coded file name loads and runs
        that code file.
        """
        from ..words import words_to_string

        system = self

        if "alto-os" not in self.programs.names():

            class AltoOSWorld(WorldProgram):
                name = "alto-os"

                def phase_boot(self, ctx, message):
                    system.call_counter_junta()  # reinitialize the packages
                    if message:
                        program_file_name = words_to_string(list(message))
                        file = system.fs.open_file(program_file_name)
                        system.loader.load_file(file)
                        return Halt(system.loader.invoke(system))
                    system.executive.repl()
                    return Halt(system.display.text())

            self.programs.register(AltoOSWorld)
        self.engine.swapper.outload(file_name, "alto-os", "boot")

    # ------------------------------------------------------------------------
    # The DEBUG key (section 4)
    # ------------------------------------------------------------------------

    def install_debug_key(self, state_file: str = "Swatee") -> None:
        """Arm the DEBUG key: striking it writes the machine state on a
        disk file (section 4: "when the user strikes a special DEBUG key on
        the keyboard, the state of the machine is written on a disk file").

        The saved world resumes at the Executive when InLoaded -- a
        registered debugger program can then examine or patch the file (see
        ``examples/debugger.py``).  The Alto's file was called Swatee (the
        thing Swat, the debugger, operates on).
        """

        def on_debug_key() -> None:
            self.engine.swapper.emergency_outload(state_file, "executive")
            self.display.write(f"\n[DEBUG] state written to {state_file}\n")

        self.keyboard_device.debug_handler = on_debug_key

    # ------------------------------------------------------------------------
    # Keyboard and the Executive
    # ------------------------------------------------------------------------

    def type_ahead(self, text: str) -> None:
        """Simulate the user typing (lands in the interrupt buffer)."""
        self.keyboard_device.type_text(text)
        self.keyboard_process.pump()

    def run_executive(self, script: Optional[str] = None, max_commands: int = 1000) -> str:
        """Feed *script* to the keyboard and run the Executive; returns the
        display text accumulated meanwhile."""
        before = self.display.scrolled
        if script is not None:
            self.type_ahead(script)
        self.executive.repl(max_commands=max_commands)
        return self.display.text()

    def __repr__(self) -> str:
        return f"AltoOS({self.fs!r}, level={self.junta.retained_level()})"
