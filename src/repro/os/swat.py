"""Swat: the world-swap debugger as a reusable package (section 4).

"The debugging program may examine or alter the state of the faulty
program by reading or writing portions of the file that was written as a
result of the breakpoint.  The debugger can later resume execution of the
original program by restoring the machine state from the file.  The
original program and the debugger thus operate as coroutines."

``Swat`` operates purely on state *files* -- never on the live machine --
which is what made the real debugger safe to use on arbitrary victims: the
victim's world is inert bytes while Swat pokes at it.  (Swat and Swatee are
the historical names: the debugger and the debuggee's state file.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import BadStateFile
from ..fs.filesystem import FileSystem
from ..memory.core import MEMORY_WORDS
from ..world.machine import REGISTER_COUNT
from ..world.statefile import pack_state, unpack_state
from ..world.swap import Transfer


class Swat:
    """Examine and alter a saved world, then resume it."""

    def __init__(self, fs: FileSystem, state_file_name: str = "Swatee") -> None:
        self.fs = fs
        self.state_file_name = state_file_name
        self._load()

    def _load(self) -> None:
        file = self.fs.open_file(self.state_file_name)
        (self.memory_words, self.registers, self.program, self.phase,
         self.typeahead) = unpack_state(file.read_data())
        self.dirty = False

    # ------------------------------------------------------------------------
    # Examining
    # ------------------------------------------------------------------------

    def read_word(self, address: int) -> int:
        self._check_address(address)
        return self.memory_words[address]

    def read_block(self, address: int, count: int) -> List[int]:
        self._check_address(address)
        self._check_address(address + count - 1)
        return self.memory_words[address : address + count]

    def read_register(self, index: int) -> int:
        if not 0 <= index < REGISTER_COUNT:
            raise IndexError(f"register {index} out of range")
        return self.registers[index]

    def where(self) -> Tuple[str, str]:
        """The victim's identity: (program, resumption phase)."""
        return self.program, self.phase

    def search(self, value: int, start: int = 0, end: int = MEMORY_WORDS) -> List[int]:
        """Addresses in [start, end) whose word equals *value*."""
        return [a for a in range(start, min(end, MEMORY_WORDS))
                if self.memory_words[a] == value]

    def dump(self, address: int, count: int = 8) -> str:
        """An octal-free, human-readable dump line (hex, like this era of
        tooling rendered for maintenance)."""
        words = self.read_block(address, count)
        cells = " ".join(f"{w:04x}" for w in words)
        return f"{address:04x}: {cells}"

    # ------------------------------------------------------------------------
    # Altering
    # ------------------------------------------------------------------------

    def write_word(self, address: int, value: int) -> None:
        self._check_address(address)
        if not 0 <= value <= 0xFFFF:
            raise ValueError(f"word out of range: {value}")
        self.memory_words[address] = value
        self.dirty = True

    def write_block(self, address: int, values: Sequence[int]) -> None:
        for offset, value in enumerate(values):
            self.write_word(address + offset, value)

    def write_register(self, index: int, value: int) -> None:
        if not 0 <= index < REGISTER_COUNT:
            raise IndexError(f"register {index} out of range")
        if not 0 <= value <= 0xFFFF:
            raise ValueError(f"word out of range: {value}")
        self.registers[index] = value
        self.dirty = True

    def set_resume_phase(self, phase: str) -> None:
        """Redirect where the victim resumes (the saved-PC patch)."""
        self.phase = phase
        self.dirty = True

    # ------------------------------------------------------------------------
    # Committing and resuming
    # ------------------------------------------------------------------------

    def commit(self) -> None:
        """Write the (possibly altered) world back to the state file."""
        file = self.fs.open_file(self.state_file_name)
        file.write_data(
            pack_state(self.memory_words, self.registers, self.program, self.phase,
                       self.typeahead)
        )
        self.dirty = False

    def resume(self, message: Optional[Sequence[int]] = None) -> Transfer:
        """The action a debugger phase returns to restore the victim."""
        if self.dirty:
            self.commit()
        return Transfer(self.state_file_name, message or ())

    @staticmethod
    def _check_address(address: int) -> None:
        if not 0 <= address < MEMORY_WORDS:
            raise IndexError(f"address {address:#x} outside the 64k space")
