"""The interrupt-driven keyboard process (sections 2 and 5.2).

"one [process] puts keyboard input characters into a buffer, while the
other does all the interesting work.  The keyboard process is
interrupt-driven and has no critical sections."

``KeyboardProcess`` is that first process.  Its ring buffer lives *inside
the simulated memory*, in the level-2 region -- which is why type-ahead
survives both Junta (level 2 is nearly always retained) and world swaps
(the buffer words travel with the memory image), exactly as section 5.2
promises: "any characters typed ahead by the user when running one program
are saved for interpretation by the next."
"""

from __future__ import annotations

from typing import Optional

from ..errors import MemoryFault
from ..memory.core import Region
from ..streams.base import Stream
from ..streams.keyboard import KeyboardDevice

#: Ring-buffer header words inside the region.
_HEAD = 0
_TAIL = 1
_DATA = 2


class KeyboardProcess:
    """Moves keystrokes from the device into a memory-resident ring buffer."""

    def __init__(self, region: Region, device: KeyboardDevice) -> None:
        if len(region) < _DATA + 2:
            raise ValueError("keyboard buffer region too small")
        self.region = region
        self.device = device
        self.capacity = len(region) - _DATA
        self.dropped = 0
        self.initialize()

    def initialize(self) -> None:
        """Empty the buffer (CounterJunta's reinitialization hook)."""
        self.region.write(_HEAD, 0)
        self.region.write(_TAIL, 0)

    # -- the interrupt side --------------------------------------------------------

    def pump(self) -> int:
        """Drain the device into the memory ring (the interrupt handler);
        returns characters moved."""
        moved = 0
        while self.device.available():
            ch = self.device.read_key()
            if not self._push(ord(ch)):
                self.dropped += 1
                break
            moved += 1
        return moved

    def _push(self, code: int) -> bool:
        head, tail = self.region.read(_HEAD), self.region.read(_TAIL)
        nxt = (tail + 1) % self.capacity
        if nxt == head:
            return False  # full
        self.region.write(_DATA + tail, code)
        self.region.write(_TAIL, nxt)
        return True

    # -- the reading side --------------------------------------------------------------

    def available(self) -> int:
        head, tail = self.region.read(_HEAD), self.region.read(_TAIL)
        return (tail - head) % self.capacity

    def read_char(self) -> Optional[str]:
        head, tail = self.region.read(_HEAD), self.region.read(_TAIL)
        if head == tail:
            return None
        code = self.region.read(_DATA + head)
        self.region.write(_HEAD, (head + 1) % self.capacity)
        return chr(code)

    def peek_char(self) -> Optional[str]:
        head, tail = self.region.read(_HEAD), self.region.read(_TAIL)
        if head == tail:
            return None
        return chr(self.region.read(_DATA + head))

    def contents(self) -> str:
        """The buffered type-ahead, unconsumed."""
        out = []
        head, tail = self.region.read(_HEAD), self.region.read(_TAIL)
        while head != tail:
            out.append(chr(self.region.read(_DATA + head)))
            head = (head + 1) % self.capacity
        return "".join(out)


def buffered_keyboard_stream(process: KeyboardProcess) -> Stream:
    """The standard keyboard stream over the memory-resident buffer.

    ``get`` pumps the device first, so scripted keystrokes are always
    visible; ``endof`` means "no input pending right now".
    """

    def get(stream: Stream):
        proc: KeyboardProcess = stream.state["process"]
        proc.pump()
        ch = proc.read_char()
        if ch is None:
            from ..errors import EndOfStream

            raise EndOfStream("keyboard buffer empty")
        return ch

    def endof(stream: Stream) -> bool:
        proc: KeyboardProcess = stream.state["process"]
        proc.pump()
        return proc.available() == 0

    stream = Stream(
        get=get,
        endof=endof,
        reset=lambda s: s.state["process"].initialize(),
        process=process,
    )
    stream.set_operation("peek", lambda s: s.state["process"].peek_char())
    return stream
