"""The program loader (section 5.1).

"Code for the program is read from a disk stream and loaded into low memory
addresses.  All references to operating system procedures are bound, using
a fixup table contained in the code file.  Finally, the program is invoked
by calling a single entry routine."

A code (".run") file's data is:

* word 0: magic; word 1: format version;
* word 2: code word count; word 3: fixup count;
* 20 words: entry name (BCPL string) -- the behaviour looked up in the
  executable registry (our stand-in for executing the code words);
* fixup entries, each ``[code offset, service-name string words ...]``
  prefixed by its total length;
* the code words themselves (opaque payload in this reproduction).

Binding is real: each fixup offset receives the memory address of the named
service's dispatch slot inside its Junta level -- so loading a program that
references a service whose level was removed fails with
:class:`~repro.errors.FixupError`, exactly the discipline the level scheme
imposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import FixupError, JuntaError, LoadError
from ..streams.base import Stream
from ..streams.disk_stream import WORD_ITEMS, open_read_stream, open_write_stream
from ..words import string_to_words, words_to_string
from .junta import JuntaController
from .levels import level_providing

_MAGIC = 0xBC91  # "BCPL run file"
_FORMAT_VERSION = 1
_NAME_WORDS = 20

#: Where program code is loaded: "low memory addresses".
LOAD_ADDRESS = 0x0100


@dataclass(frozen=True)
class Fixup:
    """One fixup-table entry: bind code[offset] to a system service."""

    offset: int
    service: str


@dataclass
class CodeFile:
    """The decoded contents of a .run file."""

    entry: str
    code: List[int]
    fixups: List[Fixup] = field(default_factory=list)

    def pack_words(self) -> List[int]:
        if not self.entry:
            raise LoadError("code file needs an entry name")
        header = [_MAGIC, _FORMAT_VERSION, len(self.code), len(self.fixups)]
        name = string_to_words(self.entry, max_bytes=_NAME_WORDS * 2 - 1)
        name += [0] * (_NAME_WORDS - len(name))
        body: List[int] = []
        for fixup in self.fixups:
            service_words = string_to_words(fixup.service)
            body.append(2 + len(service_words))  # entry length
            body.append(fixup.offset)
            body.extend(service_words)
        return header + name + body + list(self.code)

    @classmethod
    def unpack_words(cls, words: Sequence[int]) -> "CodeFile":
        if len(words) < 4 + _NAME_WORDS:
            raise LoadError("code file truncated")
        if words[0] != _MAGIC:
            raise LoadError(f"bad code-file magic {words[0]:#06x}")
        if words[1] != _FORMAT_VERSION:
            raise LoadError(f"unknown code-file version {words[1]}")
        code_count, fixup_count = words[2], words[3]
        try:
            entry = words_to_string(words[4 : 4 + _NAME_WORDS])
        except ValueError as exc:
            raise LoadError(f"corrupt entry name: {exc}") from exc
        cursor = 4 + _NAME_WORDS
        fixups: List[Fixup] = []
        for _ in range(fixup_count):
            if cursor >= len(words):
                raise LoadError("fixup table truncated")
            length = words[cursor]
            if length < 3 or cursor + length > len(words):
                raise LoadError(f"bad fixup entry length {length}")
            offset = words[cursor + 1]
            try:
                service = words_to_string(words[cursor + 2 : cursor + length])
            except ValueError as exc:
                raise LoadError(f"corrupt fixup service name: {exc}") from exc
            fixups.append(Fixup(offset=offset, service=service))
            cursor += length
        code = list(words[cursor : cursor + code_count])
        if len(code) != code_count:
            raise LoadError(f"code truncated: {len(code)} of {code_count} words")
        for fixup in fixups:
            if fixup.offset >= code_count:
                raise LoadError(f"fixup offset {fixup.offset} beyond code of {code_count} words")
        return cls(entry=entry, code=code, fixups=fixups)


@dataclass
class LoadedProgram:
    """A program in memory, fixups bound, ready to invoke."""

    entry: str
    base: int
    size: int
    bound_services: Dict[str, int]


class ExecutableRegistry:
    """Entry names -> Python behaviours (the stand-in for the code words).

    The real machine executed the loaded words; we dispatch on the entry
    name.  Registering here is analogous to having the instruction set
    (microcode) that the code words target.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, Callable] = {}

    def register(self, name: str, fn: Optional[Callable] = None):
        if fn is None:
            def decorator(f: Callable) -> Callable:
                self._entries[name] = f
                return f

            return decorator
        self._entries[name] = fn
        return fn

    def lookup(self, name: str) -> Callable:
        fn = self._entries.get(name)
        if fn is None:
            raise LoadError(f"no behaviour registered for entry {name!r}")
        return fn

    def names(self) -> List[str]:
        return sorted(self._entries)


class ProgramLoader:
    """Loads code files into low memory and binds their fixups."""

    def __init__(self, machine, junta: JuntaController, executables: ExecutableRegistry) -> None:
        self.machine = machine
        self.junta = junta
        self.executables = executables
        self.loaded: Optional[LoadedProgram] = None

    # -- service dispatch addresses -------------------------------------------------

    def service_address(self, service: str) -> int:
        """The memory address of a service's dispatch slot in its level."""
        self.junta.require_service(service)
        spec = level_providing(service)
        region = self.junta.regions[spec.number]
        return region.start + spec.services.index(service)

    # -- loading ----------------------------------------------------------------------

    def load_stream(self, stream: Stream) -> LoadedProgram:
        """Read a code file from a (word) disk stream and load it."""
        words = []
        while not stream.endof():
            words.append(stream.get())
        return self.load_words(words)

    def load_words(self, words: Sequence[int]) -> LoadedProgram:
        code_file = CodeFile.unpack_words(words)
        code = list(code_file.code)
        bound: Dict[str, int] = {}
        for fixup in code_file.fixups:
            try:
                address = self.service_address(fixup.service)
            except JuntaError as exc:
                raise FixupError(str(exc)) from exc
            except ValueError as exc:
                raise FixupError(f"unknown system procedure {fixup.service!r}") from exc
            code[fixup.offset] = address
            bound[fixup.service] = address
        # Overlay: loading replaces whatever program was in low memory.
        self.machine.memory.write_block(LOAD_ADDRESS, code)
        self.loaded = LoadedProgram(
            entry=code_file.entry, base=LOAD_ADDRESS, size=len(code), bound_services=bound
        )
        return self.loaded

    def load_file(self, file) -> LoadedProgram:
        """Load from an AltoFile via a word disk stream (the paper's path)."""
        stream = open_read_stream(file, items=WORD_ITEMS, update_dates=False)
        try:
            return self.load_stream(stream)
        finally:
            stream.close()

    # -- invocation ------------------------------------------------------------------

    def invoke(self, os, args: Sequence[str] = ()):
        """Call the single entry routine of the loaded program."""
        if self.loaded is None:
            raise LoadError("no program loaded")
        behaviour = self.executables.lookup(self.loaded.entry)
        return behaviour(os, list(args))


def write_code_file(fs, name: str, code_file: CodeFile):
    """The "linker": write a runnable code file into the file system."""
    file = fs.create_file(name) if fs.root.lookup(name) is None else fs.open_file(name)
    stream = open_write_stream(file, items=WORD_ITEMS)
    for word in code_file.pack_words():
        stream.put(word)
    stream.close()
    return file
