"""Junta and CounterJunta (section 5.2).

"A program that prefers not to use the standard procedures provided by the
system, or that needs to use the memory space occupied by them, may request
that some or all system procedures be deleted from memory.  The procedure
that removes procedures is called Junta because it forcibly takes over the
machine. ... The highest level number to be retained is passed as an
argument to Junta, which removes all higher-numbered levels and frees the
storage they occupy.  The CounterJunta procedure restores all levels that
were removed, and reinitializes any data structures they contain."

``JuntaController`` owns the level layout inside a machine's memory.
``junta(n)`` marks levels above *n* non-resident and returns the freed
contiguous region (the caller typically builds a Zone over it);
``counter_junta()`` restores every level -- refilling its storage and
re-running its initializer, the stand-in for restoring "from the
InLoad/OutLoad context for the operating system".

The residency bookkeeping itself is one word *inside the level-1 region*,
because that is where it lived on the real machine: a world swap therefore
carries the junta state along with the level contents, and a sufficiently
errant program really can clobber it (section 4.1's worry about the
InLoad/OutLoad level).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..errors import JuntaError
from ..memory.core import Memory, Region
from .levels import (
    LEVELS,
    MAX_LEVEL,
    MIN_LEVEL,
    fill_pattern,
    layout,
    level_providing,
    spec_for,
)

#: Offset of the residency mask word within the level-1 region.
_MASK_OFFSET = 0


class JuntaController:
    """Tracks which levels are resident and hands out their storage."""

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        self.regions: Dict[int, Region] = layout(memory)
        self._initializers: Dict[int, Callable[[Region], None]] = {}
        self.juntas = 0
        self.counter_juntas = 0
        for spec in LEVELS:
            self._fill(spec.number)
        self._write_mask(self._all_bits())

    # ------------------------------------------------------------------------
    # The residency mask (in simulated memory, so it swaps with the world)
    # ------------------------------------------------------------------------

    @staticmethod
    def _bit(level_number: int) -> int:
        return 1 << (level_number - 1)

    @staticmethod
    def _all_bits() -> int:
        return (1 << MAX_LEVEL) - 1

    def _read_mask(self) -> int:
        return self.regions[MIN_LEVEL].read(_MASK_OFFSET)

    def _write_mask(self, mask: int) -> None:
        self.regions[MIN_LEVEL].write(_MASK_OFFSET, mask & 0xFFFF)

    @property
    def resident(self) -> Set[int]:
        """The resident level numbers (a snapshot; mutate via junta/
        counter_junta, or poke the mask word if you are feeling errant)."""
        mask = self._read_mask()
        return {spec.number for spec in LEVELS if mask & self._bit(spec.number)}

    # ------------------------------------------------------------------------
    # Residency queries
    # ------------------------------------------------------------------------

    def is_resident(self, level_number: int) -> bool:
        spec_for(level_number)
        return bool(self._read_mask() & self._bit(level_number))

    def retained_level(self) -> int:
        """The highest consecutive level currently resident."""
        level = 0
        mask = self._read_mask()
        for spec in LEVELS:
            if mask & self._bit(spec.number):
                level = spec.number
            else:
                break
        return level

    def require_service(self, service: str) -> None:
        """Fault unless the level providing *service* is resident.

        This is what a system call does first; a program that removed disk
        streams with Junta and then calls them gets a :class:`JuntaError`,
        not garbage.
        """
        spec = level_providing(service)
        if not self.is_resident(spec.number):
            raise JuntaError(
                f"service {service!r} lives in level {spec.number} ({spec.name}), "
                f"which was removed by Junta"
            )

    def set_initializer(self, level_number: int, fn: Callable[[Region], None]) -> None:
        """Register a data-structure initializer run by CounterJunta."""
        spec_for(level_number)
        self._initializers[level_number] = fn

    # ------------------------------------------------------------------------
    # Junta
    # ------------------------------------------------------------------------

    def junta(self, keep_up_to: int) -> Region:
        """Remove all levels numbered above *keep_up_to*; return their
        storage as one contiguous region (levels pack downward, so the freed
        space is the block below the kept levels)."""
        if not MIN_LEVEL <= keep_up_to <= MAX_LEVEL:
            raise JuntaError(f"level must be {MIN_LEVEL}..{MAX_LEVEL}, got {keep_up_to}")
        removed = [spec.number for spec in LEVELS if spec.number > keep_up_to]
        if not removed:
            # Keeping everything frees nothing.
            base = self.regions[MAX_LEVEL].start
            return self.memory.region(base, 0)
        mask = self._read_mask()
        for number in removed:
            mask &= ~self._bit(number)
        self._write_mask(mask)
        self.juntas += 1
        start = self.regions[max(removed)].start
        end = self.regions[min(removed)].end
        freed = self.memory.region(start, end - start)
        freed.fill(0)
        return freed

    def counter_junta(self) -> None:
        """Restore all removed levels and reinitialize their data.

        Requires level 1 (which holds CounterJunta itself, and this very
        bookkeeping) to be resident -- removing or clobbering it is the
        "sufficiently errant program" of section 4.1.
        """
        mask = self._read_mask()
        if not mask & self._bit(MIN_LEVEL):
            raise JuntaError("level 1 (swapping/CounterJunta) is not resident")
        for spec in LEVELS:
            if not mask & self._bit(spec.number):
                mask |= self._bit(spec.number)
                self._write_mask(mask)
                self._fill(spec.number)
                initializer = self._initializers.get(spec.number)
                if initializer is not None:
                    initializer(self.regions[spec.number])
        self._write_mask(mask)
        self.counter_juntas += 1

    # ------------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------------

    def resident_words(self) -> int:
        mask = self._read_mask()
        return sum(
            spec.size_words for spec in LEVELS if mask & self._bit(spec.number)
        )

    def free_words_available(self, keep_up_to: int) -> int:
        """How many words junta(keep_up_to) would free from here."""
        mask = self._read_mask()
        return sum(
            spec.size_words
            for spec in LEVELS
            if spec.number > keep_up_to and mask & self._bit(spec.number)
        )

    def _fill(self, level_number: int) -> None:
        self.regions[level_number].fill(fill_pattern(level_number))
        if level_number == MIN_LEVEL:
            # Filling level 1 must not lose the bookkeeping word.
            self._write_mask(self._all_bits())

    def level_intact(self, level_number: int) -> bool:
        """True when a level's storage still holds its fill pattern (tests
        use this to prove Junta really freed -- and CounterJunta really
        restored -- the memory).  Level 1's mask word is exempt."""
        region = self.regions[level_number]
        pattern = fill_pattern(level_number)
        start = 1 if level_number == MIN_LEVEL else 0
        return all(region.read(i) == pattern for i in range(start, len(region)))
