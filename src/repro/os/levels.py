"""The thirteen levels of the operating system (section 5.2).

"The system is organized into several levels of services, so that a
program may select the procedures it wishes to retain.  Procedures are
arranged so that the lowest level, which contains the most commonly used
services, is at the very top of memory.  Less ubiquitous services are in
levels with higher numbers, located lower in memory."

Each level has a name, a nominal size in words (calibrated from the paper
where it says -- InLoad/OutLoad are "about 900 words" -- and from the Alto
OS manual's orders of magnitude elsewhere), and the list of service names
it provides.  The Junta machinery lays the levels out from the top of
memory down and removes suffixes of this list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..memory.core import MEMORY_WORDS, Memory, Region


@dataclass(frozen=True)
class LevelSpec:
    """One level: its number, name, size, and the services it provides."""

    number: int
    name: str
    size_words: int
    services: Tuple[str, ...]


#: The levels of section 5.2, in number order (level 1 highest in memory).
LEVELS: Tuple[LevelSpec, ...] = (
    LevelSpec(1, "swapping", 900, ("outload", "inload", "counter-junta")),
    LevelSpec(2, "keyboard-buffer", 300, ("type-ahead",)),
    LevelSpec(3, "file-hints", 200, ("important-file-hints",)),
    LevelSpec(4, "bcpl-runtime", 400, ("stack-frames", "runtime")),
    LevelSpec(5, "disk-code", 900, ("disk-object",)),
    LevelSpec(6, "disk-data", 600, ("disk-buffers",)),
    LevelSpec(7, "zones", 500, ("zone-object",)),
    LevelSpec(8, "disk-streams", 1200, ("disk-stream",)),
    LevelSpec(9, "directories", 800, ("directory",)),
    LevelSpec(10, "keyboard-streams", 300, ("keyboard-stream",)),
    LevelSpec(11, "display-streams", 700, ("display-stream",)),
    LevelSpec(12, "loader-junta", 1500, ("loader", "junta")),
    LevelSpec(13, "system-free-storage", 8000, ("system-zone",)),
)

MIN_LEVEL = LEVELS[0].number
MAX_LEVEL = LEVELS[-1].number

#: Word patterns levels are filled with, so tests can tell "this level's
#: code/data is resident" from "this memory was freed and reused".
def fill_pattern(level_number: int) -> int:
    return 0xC000 | level_number


def resident_words() -> int:
    """Total words the full system occupies."""
    return sum(spec.size_words for spec in LEVELS)


def layout(memory: Memory) -> Dict[int, Region]:
    """Assign each level its region, packing down from the top of memory."""
    regions: Dict[int, Region] = {}
    top = memory.size
    for spec in LEVELS:
        start = top - spec.size_words
        if start < 0:
            raise ValueError("levels do not fit in memory")
        regions[spec.number] = memory.region(start, spec.size_words)
        top = start
    return regions


def spec_for(level_number: int) -> LevelSpec:
    for spec in LEVELS:
        if spec.number == level_number:
            return spec
    raise ValueError(f"no level {level_number} (levels are {MIN_LEVEL}..{MAX_LEVEL})")


def services_at_or_below(level_number: int) -> List[str]:
    """All services provided by levels 1..level_number."""
    out: List[str] = []
    for spec in LEVELS:
        if spec.number <= level_number:
            out.extend(spec.services)
    return out


def level_providing(service: str) -> LevelSpec:
    for spec in LEVELS:
        if service in spec.services:
            return spec
    raise ValueError(f"no level provides service {service!r}")
