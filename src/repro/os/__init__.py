"""The operating-system layer (section 5): Junta levels, the loader, the
Executive, the keyboard process, and the AltoOS facade."""

from .executive import COMMAND_FILE, Executive, RUN_EXTENSION
from .junta import JuntaController
from .kbdproc import KeyboardProcess, buffered_keyboard_stream
from .levels import (
    LEVELS,
    LevelSpec,
    MAX_LEVEL,
    MIN_LEVEL,
    fill_pattern,
    layout,
    level_providing,
    resident_words,
    services_at_or_below,
    spec_for,
)
from .loader import (
    CodeFile,
    ExecutableRegistry,
    Fixup,
    LOAD_ADDRESS,
    LoadedProgram,
    ProgramLoader,
    write_code_file,
)
from .diskless import DISKLESS_SERVICES, DisklessOS
from .swat import Swat
from .system import AltoOS

__all__ = [
    "AltoOS",
    "DISKLESS_SERVICES",
    "DisklessOS",
    "Swat",
    "COMMAND_FILE",
    "CodeFile",
    "ExecutableRegistry",
    "Executive",
    "Fixup",
    "JuntaController",
    "KeyboardProcess",
    "LEVELS",
    "LOAD_ADDRESS",
    "LevelSpec",
    "LoadedProgram",
    "MAX_LEVEL",
    "MIN_LEVEL",
    "ProgramLoader",
    "RUN_EXTENSION",
    "buffered_keyboard_stream",
    "fill_pattern",
    "layout",
    "level_providing",
    "resident_words",
    "services_at_or_below",
    "spec_for",
    "write_code_file",
]
