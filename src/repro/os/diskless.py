"""The diskless operating system (section 5.2).

"The display, keyboard, and storage-allocation packages have been assembled
to form an operating system for use without a disk, used to support
diagnostics or other programs that depend on network communications rather
than on local disk storage."

``DisklessOS`` is that alternate assembly: the same machine, keyboard
process, display, zones, and (optionally) network streams -- but no drive,
no file system, no swapping.  It exists because the packages were designed
to stand alone (section 5.2's closing point: "It is the considerable effort
that was devoted to refining the subroutine packages that makes them useful
both as a cohesive operating system and as separate packages").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import CommandError, ReproError
from ..memory.zone import Zone
from ..streams.base import Stream
from ..streams.display import DisplayDevice, display_stream
from ..streams.keyboard import KeyboardDevice
from ..world.machine import Machine
from .junta import JuntaController
from .kbdproc import KeyboardProcess, buffered_keyboard_stream

#: Levels a diskless system keeps resident: swapping and all disk-flavoured
#: packages are simply absent (levels 1, 5, 6, 8, 9 removed by assembly, not
#: by Junta -- this is a different build, not a subset of the standard one).
DISKLESS_SERVICES = (
    "type-ahead",
    "stack-frames",
    "runtime",
    "zone-object",
    "keyboard-stream",
    "display-stream",
    "system-zone",
)


class DisklessOS:
    """Keyboard + display + zones (+ network), no disk anywhere."""

    def __init__(self, machine: Optional[Machine] = None, network=None, host: str = "diskless"):
        self.machine = machine if machine is not None else Machine()
        self.junta = JuntaController(self.machine.memory)
        self.keyboard_device: KeyboardDevice = self.machine.keyboard
        self.keyboard_process = KeyboardProcess(self.junta.regions[2], self.keyboard_device)
        self.display: DisplayDevice = self.machine.display
        self.display_stream: Stream = display_stream(self.display)
        self.keyboard_stream: Stream = buffered_keyboard_stream(self.keyboard_process)
        self.system_zone = Zone(self.junta.regions[13], "system")
        self.network = network
        self.host = host
        self.diagnostics: Dict[str, callable] = {
            "memtest": self._diag_memtest,
            "zonetest": self._diag_zonetest,
            "echo": self._diag_echo,
            "nettest": self._diag_nettest,
        }

    # ------------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------------

    def network_read_stream(self) -> Stream:
        if self.network is None:
            raise CommandError("no network attached")
        from ..net.streams import network_read_stream

        return network_read_stream(self.network, self.host)

    def network_write_stream(self, destination: str) -> Stream:
        if self.network is None:
            raise CommandError("no network attached")
        from ..net.streams import network_write_stream

        return network_write_stream(self.network, self.host, destination)

    def new_zone(self, nwords: int, name: str = "user") -> Zone:
        address = self.system_zone.allocate(nwords)
        return Zone(self.machine.memory.region(address, nwords), name)

    # ------------------------------------------------------------------------
    # The diagnostics monitor (the program such systems were built for)
    # ------------------------------------------------------------------------

    def run_monitor(self, script: str, max_commands: int = 100) -> str:
        """A tiny command monitor over keyboard/display only."""
        self.keyboard_device.type_text(script)
        self.keyboard_process.pump()
        for _ in range(max_commands):
            line = self._read_line()
            if line is None or line.strip().lower() == "quit":
                break
            name = line.strip().split()[0].lower() if line.strip() else ""
            handler = self.diagnostics.get(name)
            if handler is None:
                self.display.write(f"? unknown diagnostic: {name}\n")
                continue
            try:
                handler(line.strip().split()[1:])
            except ReproError as exc:
                self.display.write(f"? {exc}\n")
        return self.display.text()

    def _read_line(self) -> Optional[str]:
        out: List[str] = []
        while True:
            self.keyboard_process.pump()
            ch = self.keyboard_process.read_char()
            if ch is None:
                return "".join(out) if out else None
            self.display.write(ch)
            if ch == "\n":
                return "".join(out)
            out.append(ch)

    # -- the diagnostics -------------------------------------------------------------

    def _diag_memtest(self, args: List[str]) -> None:
        """March a pattern through a scratch region; report bad words."""
        zone = self.new_zone(2048, "memtest")
        base = zone.allocate(2000)
        memory = self.machine.memory
        bad = 0
        for pattern in (0x5555, 0xAAAA, 0x0000, 0xFFFF):
            for offset in range(2000):
                memory[base + offset] = pattern
            for offset in range(2000):
                if memory[base + offset] != pattern:
                    bad += 1
        self.display.write(f"memtest: {4 * 2000} words checked, {bad} bad\n")

    def _diag_zonetest(self, args: List[str]) -> None:
        zone = self.new_zone(1024, "zonetest")
        blocks = [zone.allocate(31) for _ in range(20)]
        for block in blocks[::2]:
            zone.free(block)
        for block in blocks[1::2]:
            zone.free(block)
        zone.check()
        self.display.write(f"zonetest: 20 blocks cycled, free list sound\n")

    def _diag_echo(self, args: List[str]) -> None:
        self.display.write(" ".join(args) + "\n")

    def _diag_nettest(self, args: List[str]) -> None:
        """Round-trip a payload to a loopback destination and back."""
        if self.network is None:
            self.display.write("nettest: no network attached\n")
            return
        destination = args[0] if args else self.host  # loop to self by default
        out = self.network_write_stream(destination)
        payload = list(range(64))
        for word in payload:
            out.put(word)
        out.close()
        back = self.network_read_stream()
        received = []
        while not back.endof() and len(received) < len(payload):
            received.append(back.get())
        ok = received == payload
        self.display.write(f"nettest: {len(received)} words echoed, ok={ok}\n")
