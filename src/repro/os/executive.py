"""The Executive (section 5.1).

"If the program returns, the system loads and runs a standard Executive
program.  The Executive accepts user commands from the keyboard and
executes them, often by calling the loader to invoke a program the user has
requested."

Section 4's conservative communication channel is also here: "a command
scanner may write the command string typed by the user on a file with a
standard name, and may then invoke a program that will execute the
command" -- every command line is written to ``Com.cm`` before execution,
so any program (in any language environment) can read what it was asked to
do.
"""

from __future__ import annotations

import shlex
from typing import Callable, Dict, List, Optional

from ..errors import (
    CommandError,
    EndOfStream,
    FileNotFound,
    LoadError,
    ReproError,
)
from ..streams.disk_stream import open_read_stream, open_write_stream, read_string, write_string

#: The standard command file (Alto lineage: Com.cm).
COMMAND_FILE = "Com.cm"

#: Extension of runnable code files.
RUN_EXTENSION = ".run"


class Executive:
    """The standard command interpreter."""

    def __init__(self, os) -> None:
        self.os = os
        self.commands: Dict[str, Callable] = {
            "ls": self._cmd_ls,
            "type": self._cmd_type,
            "write": self._cmd_write,
            "copy": self._cmd_copy,
            "delete": self._cmd_delete,
            "rename": self._cmd_rename,
            "info": self._cmd_info,
            "dump": self._cmd_dump,
            "free": self._cmd_free,
            "scavenge": self._cmd_scavenge,
            "compact": self._cmd_compact,
            "programs": self._cmd_programs,
            "quit": self._cmd_quit,
        }
        self.running = False
        self._script_depth = 0

    # ------------------------------------------------------------------------
    # The read-eval loop
    # ------------------------------------------------------------------------

    def repl(self, max_commands: int = 1000) -> None:
        """Read command lines from the keyboard until quit or no input."""
        self.running = True
        executed = 0
        while self.running and executed < max_commands:
            line = self._read_line()
            if line is None:
                break
            if line.strip():
                self.execute(line)
                executed += 1
        self.running = False

    def _read_line(self) -> Optional[str]:
        keyboard = self.os.keyboard_stream
        out: List[str] = []
        while True:
            if keyboard.endof():
                return "".join(out) if out else None
            ch = keyboard.get()
            self.os.display.write(ch)  # echo
            if ch == "\n":
                return "".join(out)
            out.append(ch)

    # ------------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------------

    def execute(self, line: str) -> None:
        """Execute one command line, echoing results to the display."""
        self._record_command(line)
        try:
            parts = shlex.split(line)
        except ValueError as exc:
            self._print(f"? {exc}\n")
            return
        if not parts:
            return
        name, args = parts[0], parts[1:]
        try:
            if name.startswith("@"):
                self._run_command_file(name[1:])
                return
            handler = self.commands.get(name.lower())
            if handler is not None:
                handler(args)
            else:
                self._run_program(name, args)
        except ReproError as exc:
            self._print(f"? {exc}\n")

    def _record_command(self, line: str) -> None:
        """Write the command string to the standard file (section 4)."""
        fs = self.os.fs
        try:
            file = fs.open_file(COMMAND_FILE)
        except FileNotFound:
            file = fs.create_file(COMMAND_FILE)
        stream = open_write_stream(file)
        write_string(stream, line + "\n")
        stream.close()

    def _print(self, text: str) -> None:
        self.os.display.write(text)

    # ------------------------------------------------------------------------
    # Built-in commands
    # ------------------------------------------------------------------------

    def _cmd_ls(self, args: List[str]) -> None:
        directory = self.os.fs.root if not args else self.os.fs.open_directory(args[0])
        for entry_name in sorted(directory.names(), key=str.lower):
            self._print(entry_name + "\n")

    def _cmd_type(self, args: List[str]) -> None:
        if len(args) != 1:
            raise CommandError("usage: type <file>")
        file = self.os.fs.open_file(args[0])
        stream = open_read_stream(file)
        self._print(read_string(stream))
        stream.close()
        self._print("\n")

    def _cmd_write(self, args: List[str]) -> None:
        if len(args) < 2:
            raise CommandError("usage: write <file> <text...>")
        name, text = args[0], " ".join(args[1:])
        fs = self.os.fs
        try:
            file = fs.open_file(name)
        except FileNotFound:
            file = fs.create_file(name)
        stream = open_write_stream(file)
        write_string(stream, text)
        stream.close()
        self._print(f"{len(text)} bytes\n")

    def _cmd_delete(self, args: List[str]) -> None:
        if len(args) != 1:
            raise CommandError("usage: delete <file>")
        self.os.fs.delete_file(args[0])
        self._print("deleted\n")

    def _cmd_rename(self, args: List[str]) -> None:
        if len(args) != 2:
            raise CommandError("usage: rename <old> <new>")
        self.os.fs.rename_file(args[0], args[1])
        self._print("renamed\n")

    def _cmd_info(self, args: List[str]) -> None:
        """Show a file's leader properties (the metadata of section 3.2)."""
        if len(args) != 1:
            raise CommandError("usage: info <file>")
        file = self.os.fs.open_file(args[0])
        leader = file.leader
        self._print(
            f"{leader.name}: {file.byte_length} bytes in {file.page_count()} pages "
            f"(leader @{file.leader_address()})\n"
            f"  created {leader.created}  written {leader.written}  read {leader.read}\n"
            f"  serial {file.fid.serial:#010x} v{file.fid.version}"
            f"{'  [directory]' if file.fid.is_directory else ''}"
            f"{'  [maybe consecutive]' if leader.maybe_consecutive else ''}\n"
        )

    def _cmd_dump(self, args: List[str]) -> None:
        """Hex-dump a page of a file: dump <file> [page]."""
        if not 1 <= len(args) <= 2:
            raise CommandError("usage: dump <file> [page]")
        file = self.os.fs.open_file(args[0])
        page = int(args[1]) if len(args) > 1 else 1
        contents = file.read_page(page)
        self._print(f"{file.name} page {page} (L={contents.label.length}):\n")
        for base in range(0, 64, 8):  # first 64 words is plenty for a look
            cells = " ".join(f"{w:04x}" for w in contents.value[base : base + 8])
            self._print(f"  {base:03x}: {cells}\n")

    def _cmd_free(self, args: List[str]) -> None:
        self._print(f"{self.os.fs.free_pages()} free pages\n")

    def _cmd_scavenge(self, args: List[str]) -> None:
        report = self.os.scavenge()
        self._print(
            f"scavenged {report.sectors_swept} sectors, {report.files_found} files, "
            f"{report.repairs_made()} repairs, {report.elapsed_s:.1f}s\n"
        )

    def _cmd_programs(self, args: List[str]) -> None:
        for name in self.os.executables.names():
            self._print(name + "\n")

    def _cmd_quit(self, args: List[str]) -> None:
        self.running = False

    def _cmd_copy(self, args: List[str]) -> None:
        if len(args) != 2:
            raise CommandError("usage: copy <source> <destination>")
        source, destination = args
        data = self.os.fs.open_file(source).read_data()
        fs = self.os.fs
        try:
            target = fs.open_file(destination)
        except FileNotFound:
            target = fs.create_file(destination)
        target.write_data(data, now=fs.now())
        self._print(f"{len(data)} bytes copied\n")

    def _cmd_compact(self, args: List[str]) -> None:
        from ..fs.compactor import Compactor

        report = Compactor(self.os.fs.drive).compact()
        # The compactor moved things; remount and drop stale caches.
        from ..fs.filesystem import FileSystem

        self.os.fs = FileSystem.mount(self.os.drive)
        self.os.engine.fs = self.os.fs
        self.os.engine.swapper.fs = self.os.fs
        self.os.engine.swapper.forget_files()
        self._print(
            f"compacted: {report.pages_moved} pages moved, "
            f"{report.files_compacted} files, {report.elapsed_s:.1f}s\n"
        )

    # ------------------------------------------------------------------------
    # Command files (the @file convention)
    # ------------------------------------------------------------------------

    def _run_command_file(self, name: str) -> None:
        """Execute commands from a file, one per line ("@setup" runs
        Setup.cm or the literal name).  Nesting is allowed, shallowly."""
        if self._script_depth >= 4:
            raise CommandError("command files nested too deeply")
        fs = self.os.fs
        file = None
        for candidate in (name, name + ".cm"):
            if fs.root.lookup(candidate) is not None:
                file = fs.open_file(candidate)
                break
        if file is None:
            raise CommandError(f"no command file {name!r}")
        lines = file.read_data().decode("ascii", errors="replace").splitlines()
        was_running = self.running
        self._script_depth += 1
        try:
            for line in lines:
                if line.strip():
                    self._print(f">{line}\n")  # echo with a script marker
                    self.execute(line)
                if was_running and not self.running:
                    break  # the script said quit
        finally:
            self._script_depth -= 1

    # ------------------------------------------------------------------------
    # Loading programs
    # ------------------------------------------------------------------------

    def _run_program(self, name: str, args: List[str]) -> None:
        """Load <name>.run (or <name> verbatim) and invoke it."""
        fs = self.os.fs
        candidates = [name] if name.lower().endswith(RUN_EXTENSION) else [name + RUN_EXTENSION, name]
        file = None
        for candidate in candidates:
            entry = fs.root.lookup(candidate)
            if entry is not None:
                file = fs.open_entry(entry)
                break
        if file is None:
            raise CommandError(f"unknown command or program: {name}")
        self.os.loader.load_file(file)
        result = self.os.loader.invoke(self.os, args)
        if result is not None:
            self._print(f"{result}\n")
