"""Online maintenance: scavenge and compaction in bounded slices.

The offline :class:`~repro.fs.scavenger.Scavenger` and
:class:`~repro.fs.compactor.Compactor` own the whole pack for their entire
run -- fine for the paper's single-user Alto, an eternity for a file
server at production traffic (E1: ~a minute of downtime).
:class:`OnlineMaintenance` does the always-on version: each call to
:meth:`OnlineMaintenance.step` performs a *bounded* amount of work
(``budget_us`` of simulated time, at most ``moves_per_slice`` page moves)
and returns, so a server can interleave one slice per poll cycle with
request service (see ``FileServer.maintenance``).

Two phases, each crash- and concurrency-safe because every mutation uses
the same label-check disciplines as the offline tools:

* **sweep** -- audit every label against the allocation map and reconcile
  both drift directions in place (the map is a hint, section 3.3: a page
  improperly marked free costs a claim failure; one improperly marked busy
  is a lost page).  Structurally garbage labels are freed with the
  scavenger's exact-words check-then-rewrite.  The repaired map is synced
  at the end of the phase.
* **compact** -- migrate data pages (never leaders: directory hints stay
  valid) from the top of the pack into the lowest free sectors, one
  new-copy-before-free move at a time: claim the target with the page's
  own label, repair both neighbours' links, then free the source.  A crash
  between claim and free leaves a duplicate absolute name, which the
  ordinary scavenger resolves -- the identical discipline the offline
  compactor relies on.

At every slice boundary the live view is verified with
:func:`~repro.fs.fsck.check_image` (pure state inspection: no simulated
time).  Two issue kinds are tolerated while the system is live: a
``ragged-end`` is a pre-existing absolute (the scavenger will not invent
data lengths), and ``map-lies-free`` is the designed drift of the on-disk
map hint between syncs.  Damage already on the pack when maintenance
started (the first boundary's issue set is the *baseline*) is tolerated
too -- repairing pre-existing wear is the patrol's whole job, and it
cannot be required to have finished before it has started.  Anything
else -- an issue the maintenance pass itself introduced -- raises
:class:`MaintenanceInvariantError`: the incremental machinery must never
make the pack less consistent than it found it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..disk.sector import Label, VALUE_WORDS
from ..errors import (
    BadSectorError,
    FileSystemError,
    HintFailed,
    PageNotFree,
    SectorChecksumError,
)
from ..words import ones_words
from .descriptor import BOOT_PAGE_ADDRESS, DESCRIPTOR_LEADER_ADDRESS
from .fsck import check_image
from .names import FileId, FullName, page_number_from_label
from .scavenger import Scavenger

#: Default simulated-time work budget per slice (20 ms: a few label reads
#: or one page move on the simulated disk).
DEFAULT_BUDGET_US = 20_000

#: Default page-move cap per slice (bounds write amplification per cycle).
DEFAULT_MOVES_PER_SLICE = 1

#: Issue kinds tolerated at a *live* slice boundary (see module docstring).
ONLINE_TOLERATED_ISSUES = ("ragged-end", "map-lies-free")

PHASE_SWEEP = "sweep"
PHASE_COMPACT = "compact"
PHASE_DONE = "done"

_PHASE_CODES = {PHASE_SWEEP: 1, PHASE_COMPACT: 2, PHASE_DONE: 0}


class MaintenanceInvariantError(FileSystemError):
    """A slice boundary found the live view inconsistent."""


@dataclass
class MaintenanceReport:
    """Everything the incremental pass found and did so far."""

    slices: int = 0
    passes: int = 0  # completed sweep+compact rounds (continuous patrol)
    sectors_audited: int = 0
    map_freed: int = 0  # map said busy, label says free (lost pages)
    map_busied: int = 0  # map said free, label says in use
    garbage_labels_freed: int = 0
    pages_moved: int = 0
    moves_skipped: int = 0
    checks_passed: int = 0
    syncs: int = 0
    issues_seen: List[str] = field(default_factory=list)

    def repairs_made(self) -> int:
        return (self.map_freed + self.map_busied
                + self.garbage_labels_freed + self.pages_moved)


class OnlineMaintenance:
    """Incremental scavenge + compaction over a live, mounted FileSystem.

    Cooperative and single-threaded by construction: a slice runs between
    server poll cycles, when no request is mid-flight, so reconciling the
    in-memory map or moving a page races nothing.  Open files whose
    address hints a move staled recover through the ordinary hint ladder
    (the label checks fail, the file re-walks its links).

    >>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
    >>> fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
    >>> _ = fs.create_file("a.txt")
    >>> maint = OnlineMaintenance(fs)
    >>> while maint.step():
    ...     pass
    >>> maint.phase
    'done'
    >>> maint.report.checks_passed > 0
    True
    """

    def __init__(
        self,
        fs,
        budget_us: int = DEFAULT_BUDGET_US,
        moves_per_slice: int = DEFAULT_MOVES_PER_SLICE,
        verify: bool = True,
        compact: bool = True,
        continuous: bool = False,
        tolerated: Tuple[str, ...] = ONLINE_TOLERATED_ISSUES,
    ) -> None:
        if budget_us < 1:
            raise ValueError("budget_us must be >= 1")
        if moves_per_slice < 1:
            raise ValueError("moves_per_slice must be >= 1")
        self.fs = fs
        self.drive = fs.drive
        self.budget_us = budget_us
        self.moves_per_slice = moves_per_slice
        self.verify = verify
        self.compact = compact
        #: When True the maintainer is a patrol: a finished pass starts
        #: over from the top instead of going idle -- the 24/7 mode an
        #: always-on server runs, where map drift and fragmentation are
        #: re-audited for as long as the machine is up.
        self.continuous = continuous
        self.tolerated = tuple(tolerated)
        self.report = MaintenanceReport()
        self.phase = PHASE_SWEEP
        #: Pre-existing issues, captured at the first slice boundary;
        #: never held against the pass (see module docstring).
        self._baseline: Optional[set] = None
        self._total = self.drive.shape.total_sectors()
        self._sweep_cursor = 0
        self._compact_cursor = self._total - 1
        obs = self.drive.clock.obs
        self._obs = obs
        registry = obs.registry
        self._c_slices = registry.counter("fs.maint.slices")
        self._c_map_repairs = registry.counter("fs.maint.map_repairs")
        self._c_garbage = registry.counter("fs.maint.garbage_freed")
        self._c_moves = registry.counter("fs.maint.pages_moved")
        self._c_checks = registry.counter("fs.maint.slice_checks")
        self._g_phase = registry.gauge("fs.maint.phase")
        self._g_cursor = registry.gauge("fs.maint.cursor")
        self._g_phase.set(_PHASE_CODES[self.phase])

    # ------------------------------------------------------------------------
    # The slice loop
    # ------------------------------------------------------------------------

    def step(self) -> bool:
        """Run one bounded slice; returns True while work remains.

        Performs at least one unit of work, then keeps going until
        ``budget_us`` of simulated time has elapsed (or the phase ends),
        verifies the slice boundary, and returns.
        """
        if self.phase == PHASE_DONE:
            if not self.continuous:
                return False
            self.phase = PHASE_SWEEP
            self._sweep_cursor = 0
            self._compact_cursor = self._total - 1
        self.report.slices += 1
        self._c_slices.inc()
        with self._obs.span("maint.slice", "maint", phase=self.phase) as span:
            start_us = self.drive.clock.now_us
            units = 0
            moves = 0
            while True:
                if self.phase == PHASE_SWEEP:
                    self._sweep_one()
                elif self.phase == PHASE_COMPACT:
                    if moves >= self.moves_per_slice:
                        break
                    moves += self._compact_one()
                else:
                    break
                units += 1
                if self.drive.clock.now_us - start_us >= self.budget_us:
                    break
            span.annotate(units=units, cursor=self._cursor())
            self._check_boundary()
        self._g_phase.set(_PHASE_CODES[self.phase])
        self._g_cursor.set(self._cursor())
        # A patrol always has work: the pass that just ended rolls over
        # into the next one on the following step.
        return self.continuous or self.phase != PHASE_DONE

    def attach(self, server) -> "OnlineMaintenance":
        """Register this maintainer as *server*'s background timer.

        The event-driven engine runs maintenance as a self-re-arming
        event on its :class:`~repro.server.events.EventQueue`: assigning
        ``server.maintenance`` arms it, and one bounded slice then fires
        at the end of every poll cycle.  This is the same wiring as
        ``server.maintenance = maint``, returned for chaining.

        >>> from repro import DiskDrive, DiskImage, FileSystem, tiny_test_disk
        >>> from repro.net import PacketNetwork
        >>> from repro.server import FileServer
        >>> fs = FileSystem.format(DiskDrive(DiskImage(tiny_test_disk())))
        >>> net = PacketNetwork(clock=fs.drive.clock)
        >>> net.attach("fileserver")
        >>> server = FileServer(fs, net)
        >>> maint = OnlineMaintenance(fs).attach(server)
        >>> server.maintenance is maint
        True
        """
        server.maintenance = self
        return self

    def run_to_completion(self, max_slices: Optional[int] = None) -> MaintenanceReport:
        """Step until done (a convenience for tests and benches)."""
        remaining = max_slices
        while self.step():
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    break
        return self.report

    def _cursor(self) -> int:
        if self.phase == PHASE_SWEEP:
            return self._sweep_cursor
        if self.phase == PHASE_COMPACT:
            return self._compact_cursor
        return 0

    # ------------------------------------------------------------------------
    # Phase 1: the map audit sweep
    # ------------------------------------------------------------------------

    def _sweep_one(self) -> None:
        """Audit one sector's label against the allocation map."""
        address = self._sweep_cursor
        self._sweep_cursor += 1
        self._audit_one(address)
        if self._sweep_cursor >= self._total:
            self._end_sweep()

    def _audit_one(self, address: int) -> None:
        self.report.sectors_audited += 1
        allocator = self.fs.allocator
        try:
            label = self.drive.read_label(address)
        except (BadSectorError, SectorChecksumError):
            # Dead media or a torn identity: never allocatable online;
            # the offline scavenger reclaims torn sectors.
            if allocator.is_free(address):
                allocator.mark_busy(address)
                self.report.map_busied += 1
                self._c_map_repairs.inc()
            return
        if label.is_free:
            if address == BOOT_PAGE_ADDRESS:
                return  # reserved regardless of its label
            if not allocator.is_free(address):
                # A lost page: improperly marked busy, recovered here
                # exactly as the scavenger would recover it.
                allocator.mark_free(address)
                self.report.map_freed += 1
                self._c_map_repairs.inc()
            return
        if label.in_use and not Scavenger._parseable(label):
            self._free_garbage(address, label)
            return
        if allocator.is_free(address):
            allocator.mark_busy(address)
            self.report.map_busied += 1
            self._c_map_repairs.inc()

    def _free_garbage(self, address: int, label: Label) -> None:
        """Free a structurally garbage label (the scavenger's discipline:
        check the exact words we read, then rewrite free + ones)."""
        try:
            self.drive.check_label_then_rewrite(
                address, label, Label.free(), ones_words(VALUE_WORDS)
            )
        except Exception:
            return  # changed under us or unwritable; the next pass retries
        self.fs.allocator.mark_free(address)
        self.report.garbage_labels_freed += 1
        self._c_garbage.inc()

    def _end_sweep(self) -> None:
        self.fs.sync()  # persist the reconciled map (includes a flush)
        self.report.syncs += 1
        if self.compact:
            self.phase = PHASE_COMPACT
        else:
            self.report.passes += 1
            self.phase = PHASE_DONE

    # ------------------------------------------------------------------------
    # Phase 2: incremental compaction
    # ------------------------------------------------------------------------

    def _compact_one(self) -> int:
        """Consider one address from the top of the pack; returns moves (0/1)."""
        address = self._compact_cursor
        lowest_free = next(self.fs.allocator.candidates(None), None)
        if lowest_free is None or lowest_free >= address or address <= 0:
            self._end_compact()
            return 0
        self._compact_cursor -= 1
        if address in (BOOT_PAGE_ADDRESS, DESCRIPTOR_LEADER_ADDRESS):
            return 0
        try:
            contents = self.drive.read_label_value(address)
            label = Label.unpack(contents.label)
        except (BadSectorError, SectorChecksumError):
            return 0
        if not label.in_use or not Scavenger._parseable(label):
            return 0
        page_number = page_number_from_label(label)
        if page_number == 0:
            return 0  # leaders stay put: directory entry hints remain valid
        return self._move_page(address, label, contents.value, lowest_free)

    def _move_page(
        self, source: int, label: Label, value: List[int], target: int
    ) -> int:
        """One crash-safe move: claim target, relink neighbours, free source."""
        from ..disk.geometry import NIL

        fid = FileId(label.serial, label.version)
        page_number = page_number_from_label(label)
        allocator = self.fs.allocator
        page_io = self.fs.page_io
        allocator.mark_busy(target)
        try:
            page_io.claim(target, label, value)
        except PageNotFree:
            # The map lied about the target; it stays marked busy (the
            # liar protocol) and this source is retried next slice.
            self._compact_cursor += 1
            return 0
        new_name = FullName(fid, page_number, target)
        try:
            if label.prev_link != NIL:
                prev_name = FullName(fid, page_number - 1, label.prev_link)
                page_io.update_label(
                    prev_name,
                    lambda l: l.with_links(next_link=target, prev_link=l.prev_link),
                )
            if label.next_link != NIL:
                next_name = FullName(fid, page_number + 1, label.next_link)
                page_io.update_label(
                    next_name,
                    lambda l: l.with_links(next_link=l.next_link, prev_link=target),
                )
        except (HintFailed, BadSectorError, SectorChecksumError):
            # A neighbour link proved stale: undo the new copy (free it)
            # and leave the page where it is -- never leave a duplicate
            # absolute name past the slice boundary.
            allocator.release(page_io, new_name)
            self.report.moves_skipped += 1
            return 0
        allocator.release(page_io, FullName(fid, page_number, source))
        self.report.pages_moved += 1
        self._c_moves.inc()
        return 1

    def _end_compact(self) -> None:
        self.fs.sync()
        self.report.syncs += 1
        self.report.passes += 1
        self.phase = PHASE_DONE

    # ------------------------------------------------------------------------
    # The slice-boundary invariant check
    # ------------------------------------------------------------------------

    def _check_boundary(self) -> None:
        if not self.verify:
            return
        self.fs.flush()  # the platter must hold the logically current state
        report = check_image(self.drive.image)
        self._c_checks.inc()
        self.report.checks_passed += 1
        if self._baseline is None:
            self._baseline = {(issue.kind, issue.address)
                              for issue in report.issues}
        fatal = [issue for issue in report.issues
                 if issue.kind not in self.tolerated
                 and (issue.kind, issue.address) not in self._baseline]
        for issue in report.issues:
            if issue.kind not in self.report.issues_seen:
                self.report.issues_seen.append(issue.kind)
        if fatal:
            raise MaintenanceInvariantError(
                f"slice boundary (phase {self.phase}, slice "
                f"{self.report.slices}) is inconsistent: "
                + "; ".join(str(issue) for issue in fatal[:5])
            )
