"""Directories: files of (string, full name) pairs (section 3.4).

"This is done by a file called a directory, which contains a set of pairs
(string, full name).  A file may appear in any number of directories.
Since there is nothing special about a directory from the point of view of
the file system, it is possible to have a tree, or indeed an arbitrary
directed graph, of directories."

A directory is an ordinary :class:`~repro.fs.file.AltoFile` whose serial
number carries the reserved directory bit (so the scavenger can find every
directory by the label sweep alone).  Its data is a sequence of word-aligned
entries:

* word 0:  ``type << 8 | length`` -- entry type (1 = file, 0 = hole) and
  total entry length in words;
* words 1-2: file serial number (absolute);
* word 3:  file version (absolute);
* word 4:  leader-page disk address (a hint, fixed up by the scavenger);
* words 5+: the entry name, BCPL-coded.

Holes left by deletions are reused by later insertions.  Names are compared
case-insensitively (as on the Alto) but stored as given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..disk.geometry import NIL
from ..errors import DirectoryError, FileNotFound, NotADirectory
from ..words import (
    bytes_to_words,
    from_double_word,
    string_to_words,
    to_double_word,
    words_to_bytes,
    words_to_string,
)
from .file import AltoFile
from .leader import MAX_NAME_LENGTH, check_name
from .names import FileId, FullName

ENTRY_FILE = 1
ENTRY_HOLE = 0

_FIXED_ENTRY_WORDS = 5  # header + serial(2) + version + address


@dataclass(frozen=True)
class DirEntry:
    """One (string, full name) pair."""

    name: str
    full_name: FullName

    @property
    def fid(self) -> FileId:
        return self.full_name.fid

    def pack(self) -> List[int]:
        name_words = string_to_words(self.name, max_bytes=MAX_NAME_LENGTH)
        length = _FIXED_ENTRY_WORDS + len(name_words)
        high, low = to_double_word(self.fid.serial)
        return [
            (ENTRY_FILE << 8) | length,
            high,
            low,
            self.fid.version,
            self.full_name.address,
        ] + name_words


def _hole(length: int) -> List[int]:
    return [(ENTRY_HOLE << 8) | length] + [0] * (length - 1)


class Directory:
    """Entry operations over one directory file."""

    def __init__(self, file: AltoFile) -> None:
        if not file.fid.is_directory:
            raise NotADirectory(f"file {file.name!r} (serial {file.fid.serial:#x}) is not a directory")
        self.file = file

    @property
    def name(self) -> str:
        return self.file.name

    def full_name(self) -> FullName:
        return self.file.full_name()

    # ------------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------------

    #: Parse results keyed by the directory file's exact content bytes.
    #: Every query re-reads the directory through the drive (that is the
    #: simulated system's behaviour and cost model, and stays untouched),
    #: but re-parsing identical bytes into the same immutable DirEntry
    #: objects is pure computation, so it is memoized.  Keying on content
    #: makes invalidation automatic; the cap bounds memory on churn.
    _parse_cache: dict = {}
    _PARSE_CACHE_MAX = 128

    def _snapshot(self):
        """``(words, parsed)`` for the current directory content: the raw
        word tuple and the ``(offset, length, entry)`` triples."""
        data = self.file.read_data()
        if len(data) % 2:
            raise DirectoryError(f"directory {self.name!r} has odd byte length {len(data)}")
        cached = Directory._parse_cache.get(data)
        if cached is None:
            words = bytes_to_words(data)
            cached = (tuple(words), tuple(Directory._parse(words)))
            if len(Directory._parse_cache) >= Directory._PARSE_CACHE_MAX:
                Directory._parse_cache.clear()
            Directory._parse_cache[data] = cached
        return cached

    def _words(self) -> List[int]:
        return list(self._snapshot()[0])

    def _store(self, words: List[int]) -> None:
        self.file.write_data(words_to_bytes(words))

    #: Constructed DirEntry objects keyed by their exact entry words.  An
    #: entry's words are stable while the directory grows and shrinks
    #: around it, so the (pure, immutable) DirEntry can be reused across
    #: re-parses of every later content revision.  Identical words always
    #: construct an identical entry; corrupt words are never cached (they
    #: raise during construction).
    _entry_cache: dict = {}
    _ENTRY_CACHE_MAX = 4096

    @staticmethod
    def _parse(words: List[int]) -> Iterator:
        """Yield (offset, length, entry-or-None) over the raw entry list."""
        cache = Directory._entry_cache
        offset = 0
        while offset < len(words):
            header = words[offset]
            etype, length = header >> 8, header & 0xFF
            if length < 1 or offset + length > len(words):
                raise DirectoryError(f"corrupt directory entry at word {offset}")
            if etype == ENTRY_FILE:
                key = tuple(words[offset : offset + length])
                entry = cache.get(key)
                if entry is None:
                    if length < _FIXED_ENTRY_WORDS + 1:
                        raise DirectoryError(f"file entry too short at word {offset}")
                    serial = from_double_word(words[offset + 1], words[offset + 2])
                    version = words[offset + 3]
                    address = words[offset + 4]
                    try:
                        name = words_to_string(words[offset + 5 : offset + length])
                    except ValueError as exc:
                        raise DirectoryError(f"corrupt entry name at word {offset}: {exc}") from exc
                    entry = DirEntry(name, FullName(FileId(serial, version), 0, address))
                    if len(cache) >= Directory._ENTRY_CACHE_MAX:
                        cache.clear()
                    cache[key] = entry
            elif etype == ENTRY_HOLE:
                entry = None
            else:
                raise DirectoryError(f"unknown entry type {etype} at word {offset}")
            yield offset, length, entry
            offset += length

    # ------------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------------

    def entries(self) -> List[DirEntry]:
        """All live entries, in directory order."""
        return [entry for _o, _l, entry in self._snapshot()[1] if entry is not None]

    def lookup(self, name: str) -> Optional[DirEntry]:
        """Find an entry by name (case-insensitive); None when absent."""
        wanted = name.lower()
        for _o, _l, entry in self._snapshot()[1]:
            if entry is not None and entry.name.lower() == wanted:
                return entry
        return None

    def require(self, name: str) -> DirEntry:
        entry = self.lookup(name)
        if entry is None:
            raise FileNotFound(f"{name!r} not in directory {self.name!r}")
        return entry

    def names(self) -> List[str]:
        return [entry.name for entry in self.entries()]

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def __len__(self) -> int:
        return len(self.entries())

    # ------------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------------

    def add(self, name: str, full_name: FullName, replace: bool = False) -> None:
        """Insert (name, full name), reusing a hole when one fits.

        With ``replace`` an existing same-name entry is overwritten;
        otherwise a duplicate name raises :class:`DirectoryError`.
        """
        check_name(name)
        raw, parsed = self._snapshot()
        words = list(raw)
        packed = DirEntry(name, full_name).pack()
        wanted = name.lower()

        existing = None
        best_hole = None
        for offset, length, entry in parsed:
            if entry is not None and entry.name.lower() == wanted:
                existing = (offset, length)
            elif entry is None and length >= len(packed) and best_hole is None:
                best_hole = (offset, length)

        if existing is not None:
            if not replace:
                raise DirectoryError(f"{name!r} already in directory {self.name!r}")
            offset, length = existing
            words[offset : offset + length] = _hole(length)
            # Fall through to reinsert (the hole just made may be reused;
            # the words were mutated, so reparse rather than reuse `parsed`).
            return self._insert(words, packed)
        return self._insert(words, packed, parsed)

    def _insert(self, words: List[int], packed: List[int], parsed=None) -> None:
        for offset, length, entry in (self._parse(words) if parsed is None else parsed):
            if entry is None and length >= len(packed):
                remainder = length - len(packed)
                if remainder == 1:
                    # A 1-word hole cannot exist (header-only is fine, keep it).
                    words[offset : offset + length] = packed + _hole(1)
                elif remainder > 0:
                    words[offset : offset + length] = packed + _hole(remainder)
                else:
                    words[offset : offset + length] = packed
                return self._store(words)
        self._store(words + packed)

    def remove(self, name: str) -> DirEntry:
        """Remove an entry by name; returns it.  The space becomes a hole."""
        raw, parsed = self._snapshot()
        wanted = name.lower()
        for offset, length, entry in parsed:
            if entry is not None and entry.name.lower() == wanted:
                words = list(raw)
                words[offset : offset + length] = _hole(length)
                self._store(words)
                return entry
        raise FileNotFound(f"{name!r} not in directory {self.name!r}")

    def update_hint(self, name: str, address: int) -> None:
        """Fix the leader-address hint of an entry in place (the scavenger's
        "fixing up the address if necessary", section 3.5)."""
        raw, parsed = self._snapshot()
        wanted = name.lower()
        for offset, _length, entry in parsed:
            if entry is not None and entry.name.lower() == wanted:
                words = list(raw)
                words[offset + 4] = address
                return self._store(words)
        raise FileNotFound(f"{name!r} not in directory {self.name!r}")

    def null_entries(self, predicate) -> int:
        """Turn every entry matching *predicate* into a hole; returns count.

        Used by the scavenger for entries that point at nonexistent files.
        """
        raw, parsed = self._snapshot()
        words = list(raw)
        nulled = 0
        for offset, length, entry in parsed:
            if entry is not None and predicate(entry):
                words[offset : offset + length] = _hole(length)
                nulled += 1
        if nulled:
            self._store(words)
        return nulled

    def __repr__(self) -> str:
        return f"Directory({self.name!r}, {len(self)} entries)"
