"""Using hints: the recovery ladder of section 3.6.

"If this direct access fails ..., the program has several options:

  1. It may have a full name for some other portion of the file (typically,
     the leader page) which is correct.  Then it can follow links from that
     page, still avoiding the directory lookup.  Hint addresses can also be
     kept for every k-th page of the file to reduce the number of links
     that must be followed.
  2. If this fails, it may look up the FV in a directory to obtain the
     proper disk address.
  3. If this fails, it may look up the string name of the file in a
     directory to obtain a new FV and disk address.
  4. Finally, it may invoke the Scavenger to reconstruct the entire file
     system and all the directories, and then retry one of the earlier
     steps."

``HintLadder`` implements that exact sequence, counting which rung finally
succeeded (benchmark E3 decomposes access cost by rung).  ``KthPageHints``
is the every-k-pages hint table, and ``ConsecutiveReader`` is the
address-arithmetic trick for files "thought to be allocated consecutively":
compute the address of page j as a_i + j - i and let the label check catch
the lie.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..disk.geometry import NIL
from ..errors import FileNotFound, HintFailed
from ..obs import CounterAttr, MetricsRegistry
from .directory import Directory
from .names import FileId, FullName
from .page import PageContents, PageIO

#: Ladder rung names, in the order they are tried.
RUNGS = ("direct", "known-page", "directory-fv", "directory-name", "scavenge")


class LadderStats:
    """How often each rung resolved an access (benchmark instrumentation).

    A thin view over ``fs.ladder.*`` counters in a per-ladder
    :class:`~repro.obs.MetricsRegistry`: ``successes`` reads the rung
    counters back as the familiar dict, and updates roll up into the
    clock-level registry.
    """

    link_follows = CounterAttr("fs.ladder.link_follows")

    def __init__(self, parent: Optional[MetricsRegistry] = None) -> None:
        self.registry = MetricsRegistry(parent=parent)
        self.registry.counter("fs.ladder.link_follows")
        for rung in RUNGS:
            self.registry.counter(f"fs.ladder.rung.{rung}")

    @property
    def successes(self) -> Dict[str, int]:
        return {rung: self.registry.counter(f"fs.ladder.rung.{rung}").value
                for rung in RUNGS}

    def record(self, rung: str) -> None:
        if rung not in RUNGS:
            raise KeyError(rung)
        self.registry.counter(f"fs.ladder.rung.{rung}").inc()


class KthPageHints:
    """Address hints for every k-th page of a file (section 3.6).

    Bounds the link walk after a failed direct hint to at most k-1 follows
    from the nearest kept hint.
    """

    def __init__(self, fid: FileId, k: int) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.fid = fid
        self.k = k
        self._hints: Dict[int, int] = {}

    def note(self, page_number: int, address: int) -> None:
        """Record a verified address; kept only when page_number % k == 0."""
        if page_number % self.k == 0:
            self._hints[page_number] = address

    def build(self, file) -> None:
        """Populate from an open file's verified page addresses."""
        for pn in range(0, file.last_page_number + 1):
            if pn % self.k == 0:
                self.note(pn, file.page_name(pn).address)

    def nearest(self, page_number: int) -> Optional[FullName]:
        """The hinted page closest to *page_number*, if any."""
        if not self._hints:
            return None
        best = min(self._hints, key=lambda pn: abs(pn - page_number))
        return FullName(self.fid, best, self._hints[best])

    def invalidate(self, page_number: int) -> None:
        self._hints.pop(page_number, None)

    def __len__(self) -> int:
        return len(self._hints)


class HintLadder:
    """Resolve and read file pages, falling down the rungs of section 3.6."""

    def __init__(self, fs, scavenge_allowed: bool = True) -> None:
        self.fs = fs
        self.page_io: PageIO = fs.page_io
        self.stats = LadderStats(parent=fs.drive.clock.obs.registry)
        self.scavenge_allowed = scavenge_allowed

    # ------------------------------------------------------------------------
    # The ladder
    # ------------------------------------------------------------------------

    def read_page(
        self,
        name: str,
        hint: FullName,
        known: Optional[FullName] = None,
        kth: Optional[KthPageHints] = None,
    ) -> PageContents:
        """Read the page *hint* names, trying each rung in turn.

        ``name`` is the file's string name (for rungs 3-4); ``known`` is a
        correct full name for some other portion of the file (typically the
        leader); ``kth`` is an optional every-k-pages hint table.
        """
        obs = self.fs.drive.clock.obs
        with obs.span("fs.read_page", "fs", file=name,
                      page=hint.page_number) as outer:
            # Rung 0: direct access through the hint.
            try:
                with obs.span("hints.direct", "hints"):
                    contents = self.page_io.read(hint)
                self.stats.record("direct")
                outer.annotate(rung="direct")
                return contents
            except HintFailed:
                pass

            # Rung 1: follow links from a known page / the k-th page hints.
            start = None
            if kth is not None:
                start = kth.nearest(hint.page_number)
            if start is None:
                start = known
            if start is not None:
                try:
                    with obs.span("hints.known-page", "hints"):
                        contents = self._walk_and_read(start, hint.page_number)
                    self.stats.record("known-page")
                    outer.annotate(rung="known-page")
                    return contents
                except HintFailed:
                    pass

            # Rung 2: look up the FV in a directory for the proper address.
            leader = self._lookup_by_fid(hint.fid)
            if leader is not None:
                try:
                    with obs.span("hints.directory-fv", "hints"):
                        contents = self._walk_and_read(leader, hint.page_number)
                    self.stats.record("directory-fv")
                    outer.annotate(rung="directory-fv")
                    return contents
                except HintFailed:
                    pass

            # Rung 3: look up the string name for a (possibly new) FV.
            try:
                with obs.span("hints.directory-name", "hints"):
                    entry = self.fs.root.require(name)
                    contents = self._walk_and_read(entry.full_name, hint.page_number)
                self.stats.record("directory-name")
                outer.annotate(rung="directory-name")
                return contents
            except (FileNotFound, HintFailed):
                pass

            # Rung 4: invoke the Scavenger, then retry from the directory.
            if not self.scavenge_allowed:
                raise HintFailed(f"all rungs failed for {name!r} page {hint.page_number}")
            from .filesystem import FileSystem
            from .scavenger import Scavenger

            with obs.span("hints.scavenge", "hints"):
                Scavenger(self.fs.drive).scavenge()
                remounted = FileSystem.mount(self.fs.drive)
                self.fs.__dict__.update(remounted.__dict__)  # refresh in place
                entry = self.fs.root.require(name)
                contents = self._walk_and_read(entry.full_name, hint.page_number)
            self.stats.record("scavenge")
            outer.annotate(rung="scavenge")
            return contents

    # ------------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------------

    def _walk_and_read(self, start: FullName, target: int) -> PageContents:
        """Follow links from *start* to *target*, counting follows."""
        current = start
        label = self.page_io.read_label(current)
        while current.page_number != target:
            step = PageContents(current, label)
            nxt = step.next_name if current.page_number < target else step.prev_name
            if nxt is None:
                raise HintFailed(f"chain from {start} ends before page {target}")
            self.stats.link_follows += 1
            current = nxt
            label = self.page_io.read_label(current)
        result = self.page_io.read(current)
        return result

    def _lookup_by_fid(self, fid: FileId) -> Optional[FullName]:
        """Scan the root directory for an entry with this FV."""
        for entry in self.fs.root.entries():
            if entry.fid == fid:
                return entry.full_name
        return None


@dataclass
class ConsecutiveStats:
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ConsecutiveReader:
    """Address arithmetic for files thought to be consecutive (section 3.6).

    "A program is free to assume that a file is consecutive and, knowing
    the address a_i of page i, to compute the address of page j as
    a_i + j - i.  The label check will prevent any incorrect overwriting of
    data, and will inform the program whether the disk access succeeds."
    """

    def __init__(self, page_io: PageIO, file) -> None:
        self.page_io = page_io
        self.file = file
        self.stats = ConsecutiveStats()

    def read_page(self, page_number: int) -> PageContents:
        """Read by arithmetic from the leader address; fall back to links."""
        base = self.file.leader_address()
        guess = base + page_number
        if guess < self.page_io.drive.shape.total_sectors():
            name = FullName(self.file.fid, page_number, guess)
            try:
                contents = self.page_io.read(name)
                self.stats.hits += 1
                return contents
            except HintFailed:
                self.stats.misses += 1
        else:
            self.stats.misses += 1
        return self.file.read_page(page_number)
