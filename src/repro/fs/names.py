"""Absolute names, hint names, and full names (section 3.1).

"Thus a page has a unique absolute name, which is the file identifier,
version number and page number (represented by (FV, n) ...), and it has a
hint name, which is the address.  The full name (FN) of a page is the pair
(absolute name, hint name)."

One encoding note.  The drive's check action treats a memory word of 0 as a
wildcard (section 3.3), so an expected-label buffer can never distinguish
"page number 0" from "any page number".  To keep identity checks exact we
bias the page number by +1 in the on-disk label word, and construct serial
numbers so that both serial words and the version word are always nonzero.
The logical structures here always speak in unbiased page numbers; only
:meth:`FileId.label_for` and :meth:`page_number_from_label` touch the bias.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..disk.geometry import NIL
from ..disk.sector import DIRECTORY_SERIAL_FLAG, Label
from ..errors import FileFormatError
from ..words import WORD_MASK, check_word

#: Marker bit present in every ordinary serial number, guaranteeing the high
#: serial word is nonzero (see module docstring).
ORDINARY_SERIAL_FLAG = 0x4000_0000

#: First version number; 0 is reserved so the version word is never a
#: wildcard.
FIRST_VERSION = 1

#: Bias applied to page numbers in on-disk label words.
PAGE_NUMBER_BIAS = 1

#: Largest unbiased page number representable in a label word.
MAX_PAGE_NUMBER = WORD_MASK - 1 - PAGE_NUMBER_BIAS


def make_serial(counter: int, directory: bool = False) -> int:
    """Build a serial number from an allocation counter.

    Counters whose low word is zero are unusable (the low serial word would
    be a check wildcard); callers should skip them -- see
    :func:`next_usable_counter`.
    """
    if counter < 1 or counter > 0x3FFF_FFFF:
        raise ValueError(f"serial counter out of range: {counter}")
    if counter & WORD_MASK == 0:
        raise ValueError(f"serial counter {counter:#x} would make the low serial word a wildcard")
    serial = ORDINARY_SERIAL_FLAG | counter
    if directory:
        serial |= DIRECTORY_SERIAL_FLAG
    return serial


def next_usable_counter(counter: int) -> int:
    """The next counter value whose serial has no zero words."""
    counter += 1
    if counter & WORD_MASK == 0:
        counter += 1
    return counter


def serial_counter(serial: int) -> int:
    """Recover the allocation counter from a serial (for max-scans)."""
    return serial & 0x3FFF_FFFF


@dataclass(frozen=True)
class FileId:
    """FV: a file's identity -- serial number plus version (section 3.1)."""

    serial: int
    version: int = FIRST_VERSION

    def __post_init__(self) -> None:
        if self.serial & ORDINARY_SERIAL_FLAG == 0:
            raise ValueError(f"serial {self.serial:#x} lacks the ordinary-serial marker")
        if not FIRST_VERSION <= self.version <= WORD_MASK - 1:
            raise ValueError(f"version out of range: {self.version}")

    @property
    def is_directory(self) -> bool:
        """True when the serial is in the reserved directory subset (3.4)."""
        return bool(self.serial & DIRECTORY_SERIAL_FLAG)

    # -- label construction/matching -------------------------------------------

    def label_for(
        self,
        page_number: int,
        length: int = 0,
        next_link: int = NIL,
        prev_link: int = NIL,
    ) -> Label:
        """The exact on-disk label for page (self, page_number)."""
        if not 0 <= page_number <= MAX_PAGE_NUMBER:
            raise ValueError(f"page number out of range: {page_number}")
        return Label(
            serial=self.serial,
            version=self.version,
            page_number=page_number + PAGE_NUMBER_BIAS,
            length=check_word(length, "length"),
            next_link=next_link,
            prev_link=prev_link,
        )

    def check_label(self, page_number: int) -> Label:
        """An expected-label pattern identifying page (self, page_number)
        while wildcarding length and links (the caller does not know them).

        Memoized per page number on the (frozen) instance: full names are
        rebuilt for every page operation, but the patterns they derive are
        pure functions of (fid, page)."""
        cache = self.__dict__.get("_check_labels")
        if cache is None:
            cache = self.__dict__["_check_labels"] = {}
        label = cache.get(page_number)
        if label is None:
            if not 0 <= page_number <= MAX_PAGE_NUMBER:
                raise ValueError(f"page number out of range: {page_number}")
            label = cache[page_number] = Label(
                serial=self.serial,
                version=self.version,
                page_number=page_number + PAGE_NUMBER_BIAS,
                length=0,  # wildcard
                next_link=0,  # wildcard
                prev_link=0,  # wildcard
            )
        return label

    def owns(self, label: Label) -> bool:
        """True when *label* belongs to any page of this file."""
        return label.in_use and label.serial == self.serial and label.version == self.version

    @staticmethod
    def from_label(label: Label) -> "FileId":
        if not label.in_use:
            raise FileFormatError("label does not describe an in-use page")
        return FileId(serial=label.serial, version=label.version)


def page_number_from_label(label: Label) -> int:
    """The unbiased page number recorded in an in-use label."""
    if not label.in_use:
        raise FileFormatError("label does not describe an in-use page")
    if label.page_number < PAGE_NUMBER_BIAS:
        raise FileFormatError(f"label page-number word {label.page_number} below bias")
    return label.page_number - PAGE_NUMBER_BIAS


@dataclass(frozen=True)
class FullName:
    """FN: (absolute name, hint name) -- the handle for every page operation.

    ``address`` is a hint (H); everything else is absolute (A).  A file's
    full name is the full name of its leader page: "The name of page (FV, 0)
    is also the name of the file" (section 3.2).
    """

    fid: FileId
    page_number: int = 0
    address: int = NIL

    def __post_init__(self) -> None:
        if not 0 <= self.page_number <= MAX_PAGE_NUMBER:
            raise ValueError(f"page number out of range: {self.page_number}")
        check_word(self.address, "address hint")

    @property
    def is_leader(self) -> bool:
        return self.page_number == 0

    @property
    def has_address_hint(self) -> bool:
        return self.address != NIL

    def sibling(self, page_number: int, address: int = NIL) -> "FullName":
        """The full name of another page of the same file."""
        return FullName(fid=self.fid, page_number=page_number, address=address)

    def with_address(self, address: int) -> "FullName":
        return replace(self, address=address)

    def check_label(self) -> Label:
        """Expected-label pattern for the drive's check action.

        Memoized on the (frozen) instance: every guarded page operation
        re-derives this pattern, and reusing one Label lets its packed
        form be memoized too.
        """
        label = self.__dict__.get("_check_label")
        if label is None:
            label = self.fid.check_label(self.page_number)
            self.__dict__["_check_label"] = label
        return label

    def __str__(self) -> str:
        hint = f"@{self.address}" if self.has_address_hint else "@?"
        return f"({self.fid.serial:#x}v{self.fid.version}, {self.page_number}){hint}"
