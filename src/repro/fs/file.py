"""Files: allocation units built from pages (section 3.2).

"A file is a set of pages with absolute names (FV, 0), (FV, 1) ... (FV, n).
The name of page (FV, 0) is also the name of the file.  The basic
operations on files are: create a new, empty file; add a page to the end of
a file; delete one or more pages from the end; delete the entire file."

Representation invariants (exactly the paper's):

* page 0 is the leader page (L = 512, full of properties);
* pages 1 .. n-1 are full data pages (L = 512);
* page n, the last page, has L < 512 -- so a file whose byte length is a
  multiple of 512 ends with an empty page, and end-of-file is decidable
  from L alone;
* every file has at least pages 0 and 1 (an empty file is leader + one
  empty data page).

``AltoFile`` keeps a per-page address cache.  Every entry is a hint: each
disk operation re-verifies identity via the label check, and a stale entry
is dropped and re-derived by walking links -- never trusted.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..disk.geometry import NIL
from ..disk.sector import VALUE_WORDS
from ..errors import FileFormatError, HintFailed
from ..words import PAGE_DATA_BYTES, bytes_to_words, words_to_bytes
from .allocator import PageAllocator
from .leader import LeaderPage, check_name
from .names import FileId, FullName
from .page import PageContents, PageIO

#: L of every non-last page.
FULL_PAGE = PAGE_DATA_BYTES  # 512


class AltoFile:
    """One open file: its identity, leader, and page-address hints."""

    def __init__(
        self,
        page_io: PageIO,
        allocator: PageAllocator,
        fid: FileId,
        leader_address: int,
        leader: LeaderPage,
        last_page_number: int,
        last_length: int,
    ) -> None:
        self.page_io = page_io
        self.allocator = allocator
        self.fid = fid
        self.leader = leader
        self._addresses: Dict[int, int] = {0: leader_address}
        self._last_page_number = last_page_number
        self._last_length = last_length

    # ------------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        page_io: PageIO,
        allocator: PageAllocator,
        fid: FileId,
        name: str,
        now: int = 0,
        near: Optional[int] = None,
    ) -> "AltoFile":
        """Create a new, empty file: a leader page plus one empty data page.

        Three label writes -- leader claim, data-page claim, leader link
        rewrite -- each costing the allocate revolution of section 3.3.
        """
        check_name(name)
        leader = LeaderPage(name=name, created=now, written=now, read=now, last_page_number=1)
        # Claim the leader first (its NL is fixed up once page 1 has a home).
        leader_label = fid.label_for(0, length=FULL_PAGE, next_link=NIL, prev_link=NIL)
        leader_address = allocator.allocate(page_io, leader_label, leader.pack(), near=near)
        # Claim the empty data page, linked back to the leader.
        page1_label = fid.label_for(1, length=0, next_link=NIL, prev_link=leader_address)
        page1_address = allocator.allocate(page_io, page1_label, [], near=leader_address)
        # Fix the leader's forward link (change-label operation: one revolution).
        leader_name = FullName(fid, 0, leader_address)
        page_io.rewrite_label(
            leader_name, fid.label_for(0, length=FULL_PAGE, next_link=page1_address, prev_link=NIL)
        )
        out = cls(page_io, allocator, fid, leader_address, leader, last_page_number=1, last_length=0)
        out._addresses[1] = page1_address
        out.leader = leader.with_last_page(1, page1_address)
        out._write_leader()
        return out

    @classmethod
    def open(cls, page_io: PageIO, allocator: PageAllocator, leader_name: FullName) -> "AltoFile":
        """Open a file from its full name, reading the leader page.

        The leader's last-page hint is verified (it is only a hint); if it
        is stale the last page is found by walking links.
        """
        contents = page_io.read(leader_name)
        leader = LeaderPage.unpack(contents.value)
        out = cls(
            page_io,
            allocator,
            leader_name.fid,
            leader_name.address,
            leader,
            last_page_number=0,
            last_length=0,
        )
        out._locate_last(contents)
        return out

    def _locate_last(self, leader_contents: PageContents) -> None:
        """Find the true last page, trying the leader hint first."""
        hint_pn = self.leader.last_page_number
        hint_addr = self.leader.last_page_address
        if hint_pn > 0 and hint_addr != NIL:
            try:
                label = self.page_io.read_label(FullName(self.fid, hint_pn, hint_addr))
                if label.next_link == NIL:
                    self._addresses[hint_pn] = hint_addr
                    self._last_page_number = hint_pn
                    self._last_length = label.length
                    return
            except HintFailed:
                pass  # stale hint; fall through to the link walk
        # Walk forward from the leader.
        current = PageContents(FullName(self.fid, 0, self.leader_address()), leader_contents.label)
        label = leader_contents.label
        while label.next_link != NIL:
            nxt = current.next_name
            label = self.page_io.read_label(nxt)
            self._addresses[nxt.page_number] = nxt.address
            current = PageContents(nxt, label)
        if current.name.page_number == 0:
            raise FileFormatError(f"file {self.fid.serial:#x} has no data page after the leader")
        self._last_page_number = current.name.page_number
        self._last_length = label.length

    # ------------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.leader.name

    def leader_address(self) -> int:
        return self._addresses[0]

    def full_name(self) -> FullName:
        """The file's full name (the full name of its leader page)."""
        return FullName(self.fid, 0, self.leader_address())

    @property
    def last_page_number(self) -> int:
        return self._last_page_number

    @property
    def byte_length(self) -> int:
        """Data bytes: full pages 1..n-1 plus L of the last page."""
        return (self._last_page_number - 1) * FULL_PAGE + self._last_length

    def page_count(self) -> int:
        """All pages including the leader."""
        return self._last_page_number + 1

    def known_address(self, page_number: int) -> Optional[int]:
        """The cached address hint for a page, if any (no disk traffic)."""
        return self._addresses.get(page_number)

    # ------------------------------------------------------------------------
    # Page name resolution (cache + link walking)
    # ------------------------------------------------------------------------

    def page_name(self, page_number: int) -> FullName:
        """A full name (with verified address) for page *page_number*.

        Uses the cache when possible; otherwise walks links from the nearest
        cached page, caching every step.  Raises :class:`HintFailed` if the
        page does not exist.
        """
        if not 0 <= page_number <= self._last_page_number:
            raise HintFailed(
                f"file {self.fid.serial:#x} has pages 0..{self._last_page_number}, "
                f"asked for {page_number}"
            )
        cached = self._addresses.get(page_number)
        if cached is not None:
            return FullName(self.fid, page_number, cached)
        return self._walk_to(page_number)

    def _walk_to(self, page_number: int) -> FullName:
        start_pn = min(self._addresses, key=lambda pn: abs(pn - page_number))
        current = FullName(self.fid, start_pn, self._addresses[start_pn])
        label = self.page_io.read_label(current)
        while current.page_number != page_number:
            step = PageContents(current, label)
            nxt = step.next_name if current.page_number < page_number else step.prev_name
            if nxt is None:
                raise HintFailed(f"link chain of file {self.fid.serial:#x} ends at {current}")
            label = self.page_io.read_label(nxt)
            self._addresses[nxt.page_number] = nxt.address
            current = nxt
        return current

    def _forget(self, page_number: int) -> None:
        self._addresses.pop(page_number, None)

    def _retrying(self, page_number: int, operation):
        """Run a page operation, re-resolving once if the cache was stale."""
        name = self.page_name(page_number)
        try:
            return operation(name)
        except HintFailed:
            if page_number == 0:
                raise  # the leader hint comes from outside; let the ladder act
            self._forget(page_number)
            # A stale address hint may be mirrored by a stale sector-cache
            # entry on a caching drive; both are hints, both get dropped.
            self.page_io.invalidate(name.address)
            return operation(self.page_name(page_number))

    # ------------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------------

    def read_page(self, page_number: int) -> PageContents:
        """Read one page's data (identity-checked)."""
        contents = self._retrying(page_number, self.page_io.read)
        if contents.label.next_link != NIL:
            self._addresses[page_number + 1] = contents.label.next_link
        return contents

    def read_data(self) -> bytes:
        """All data bytes (pages 1..n, honouring L of the last page)."""
        out = bytearray()
        for pn in range(1, self._last_page_number + 1):
            contents = self.read_page(pn)
            out += words_to_bytes(contents.value, nbytes=contents.label.length)
        return bytes(out)

    # ------------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------------

    def write_full_page(self, page_number: int, data: Sequence[int]) -> None:
        """Overwrite a non-last data page (must already have L = 512)."""
        if not 1 <= page_number < self._last_page_number:
            raise ValueError(f"page {page_number} is not an interior data page")
        if len(data) != VALUE_WORDS:
            raise ValueError(f"interior pages take exactly {VALUE_WORDS} words")
        self._retrying(page_number, lambda name: self.page_io.write(name, data))

    def write_last_page(self, data: Sequence[int], length: int) -> None:
        """Overwrite the last page and set its byte length L.

        When L changes this is the change-length operation of section 3.3
        (label read/check, then rewrite: one revolution); when L is
        unchanged it is an ordinary single-pass write.
        """
        if not 0 <= length < FULL_PAGE:
            raise ValueError(f"last-page length must be in [0, {FULL_PAGE}), got {length}")
        if len(data) * 2 < length:
            raise ValueError(f"{len(data)} words cannot hold {length} bytes")
        pn = self._last_page_number
        if length == self._last_length:
            self._retrying(pn, lambda name: self.page_io.write(name, data))
        else:
            def rewrite(name: FullName) -> None:
                self.page_io.update_label(
                    name,
                    lambda label: self.fid.label_for(
                        pn, length=length, next_link=NIL, prev_link=label.prev_link
                    ),
                )
                self.page_io.write(name, data)

            self._retrying(pn, rewrite)
            self._last_length = length

    def append_page(self, data: Sequence[int], length: int) -> None:
        """Add a page to the end (section 3.2).

        The old last page becomes a full interior page; the new page carries
        the old last page's data role.  Costs: one allocate revolution for
        the claim, one revolution to rewrite the old last label.
        """
        if not 0 <= length < FULL_PAGE:
            raise ValueError(f"last-page length must be in [0, {FULL_PAGE}), got {length}")
        old_last = self.page_name(self._last_page_number)
        new_pn = self._last_page_number + 1
        new_label = self.fid.label_for(new_pn, length=length, next_link=NIL, prev_link=old_last.address)
        new_address = self.allocator.allocate(self.page_io, new_label, data, near=old_last.address)
        # Promote the old last page: L becomes 512 and NL points to the new
        # page (the change-length operation: read-check, then rewrite).
        self.page_io.update_label(
            old_last,
            lambda label: self.fid.label_for(
                old_last.page_number,
                length=FULL_PAGE,
                next_link=new_address,
                prev_link=label.prev_link,
            ),
        )
        self._addresses[new_pn] = new_address
        self._last_page_number = new_pn
        self._last_length = length
        self._update_last_page_hint()

    def truncate_last_page(self) -> None:
        """Delete the last page from the end (section 3.2).

        The freed page's predecessor becomes the new last page.  Its L was
        512 (interior pages are full) and the invariant requires L < 512 on
        a last page, so it is rewritten with L = 0: truncation discards its
        bytes from the file.  Callers that want a specific tail length use
        :meth:`write_last_page` afterwards (as :meth:`write_data` does).
        """
        if self._last_page_number <= 1:
            raise ValueError("cannot delete page 1; delete the file instead")
        last = self.page_name(self._last_page_number)
        self.allocator.release(self.page_io, last)
        self._forget(self._last_page_number)
        new_last_pn = self._last_page_number - 1
        new_last = self.page_name(new_last_pn)
        self.page_io.update_label(
            new_last,
            lambda label: self.fid.label_for(
                new_last_pn, length=0, next_link=NIL, prev_link=label.prev_link
            ),
        )
        self._last_page_number = new_last_pn
        self._last_length = 0
        self._update_last_page_hint()

    def write_data(self, data: bytes, now: Optional[int] = None) -> None:
        """Replace the file's entire contents with *data*.

        Reuses existing pages with ordinary single-pass writes wherever
        possible; extends or truncates at the tail.  The leader's written
        date is updated when *now* is given.
        """
        n_full, last_bytes = divmod(len(data), PAGE_DATA_BYTES)
        target_last = n_full + 1

        # Resize the page chain first: shrink from the tail, then grow with
        # empty pages (appending promotes each old last page to L = 512).
        while self._last_page_number > target_last:
            self.truncate_last_page()
        while self._last_page_number < target_last:
            self.append_page([], 0)

        # Fill interior pages with ordinary single-pass writes.
        for pn in range(1, target_last):
            chunk = data[(pn - 1) * PAGE_DATA_BYTES : pn * PAGE_DATA_BYTES]
            self.write_full_page(pn, bytes_to_words(chunk))

        # Tail page: the change-length operation sets L = last_bytes.
        tail_words = bytes_to_words(data[n_full * PAGE_DATA_BYTES :])
        self.write_last_page(tail_words, length=last_bytes)
        if now is not None:
            self.touch(written=now)

    # ------------------------------------------------------------------------
    # Whole-file operations
    # ------------------------------------------------------------------------

    def delete(self) -> None:
        """Delete the entire file: free every page, last to first."""
        for pn in range(self._last_page_number, -1, -1):
            name = self.page_name(pn)
            self.allocator.release(self.page_io, name)
            self._forget(pn)
        self._last_page_number = 0
        self._last_length = 0

    # ------------------------------------------------------------------------
    # Leader maintenance
    # ------------------------------------------------------------------------

    def touch(self, written: Optional[int] = None, read: Optional[int] = None) -> None:
        """Update access dates in the leader (one ordinary page write)."""
        self.leader = self.leader.touched(written=written, read=read)
        self._write_leader()

    def rename(self, name: str) -> None:
        """Change the leader name (the file's survival name, section 3.5)."""
        self.leader = self.leader.renamed(name)
        self._write_leader()

    def set_consecutive_hint(self, flag: bool) -> None:
        self.leader = self.leader.with_consecutive(flag)
        self._write_leader()

    def _update_last_page_hint(self) -> None:
        self.leader = self.leader.with_last_page(
            self._last_page_number, self._addresses.get(self._last_page_number, NIL)
        )
        self._write_leader()

    def _write_leader(self) -> None:
        name = FullName(self.fid, 0, self.leader_address())
        self.page_io.write(name, self.leader.pack())

    def refresh_address_cache(self, addresses: Dict[int, int]) -> None:
        """Install externally derived address hints (e.g. after scavenging)."""
        self._addresses.update(addresses)

    def __repr__(self) -> str:
        return (
            f"AltoFile({self.name!r}, serial={self.fid.serial:#x}, "
            f"pages={self.page_count()}, bytes={self.byte_length})"
        )
