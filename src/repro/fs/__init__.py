"""The Alto file system (section 3): pages, files, directories, hints,
the scavenger, and the compacting scavenger."""

from .allocator import PageAllocator
from .check import (
    Change,
    RecoveryReport,
    SweepResult,
    canonical_build,
    canonical_workload,
    check_recovery,
    crash_point_sweep,
    prefix_consistent,
    snapshot_files,
)
from .compactor import CompactionReport, Compactor, compact
from .descriptor import (
    BOOT_PAGE_ADDRESS,
    DESCRIPTOR_LEADER_ADDRESS,
    DESCRIPTOR_NAME,
    DiskDescriptor,
)
from .directory import DirEntry, Directory
from .file import AltoFile, FULL_PAGE
from .fsck import CheckReport, Issue, check_image
from .filesystem import FileSystem, ROOT_DIRECTORY_NAME, SERIAL_LEASE
from .hints import ConsecutiveReader, HintLadder, KthPageHints, LadderStats, RUNGS
from .journal import JournaledDirectory, JournalRecord, recover_directory
from .volumes import DrivePair, copy_all_files, copy_file, duplicate_pack
from .leader import LeaderPage, MAX_NAME_LENGTH
from .names import (
    FIRST_VERSION,
    FileId,
    FullName,
    MAX_PAGE_NUMBER,
    make_serial,
    page_number_from_label,
)
from .online import (
    MaintenanceInvariantError,
    MaintenanceReport,
    ONLINE_TOLERATED_ISSUES,
    OnlineMaintenance,
)
from .page import PageContents, PageIO
from .scavenger import ScavengeReport, Scavenger, SweptPage, scavenge

__all__ = [
    "AltoFile",
    "BOOT_PAGE_ADDRESS",
    "Change",
    "CheckReport",
    "CompactionReport",
    "Compactor",
    "ConsecutiveReader",
    "DESCRIPTOR_LEADER_ADDRESS",
    "DESCRIPTOR_NAME",
    "DirEntry",
    "DrivePair",
    "Directory",
    "DiskDescriptor",
    "FIRST_VERSION",
    "FULL_PAGE",
    "FileId",
    "FileSystem",
    "FullName",
    "HintLadder",
    "Issue",
    "JournalRecord",
    "JournaledDirectory",
    "KthPageHints",
    "LadderStats",
    "LeaderPage",
    "MAX_NAME_LENGTH",
    "MAX_PAGE_NUMBER",
    "MaintenanceInvariantError",
    "MaintenanceReport",
    "ONLINE_TOLERATED_ISSUES",
    "OnlineMaintenance",
    "PageAllocator",
    "PageContents",
    "PageIO",
    "ROOT_DIRECTORY_NAME",
    "RUNGS",
    "RecoveryReport",
    "SERIAL_LEASE",
    "ScavengeReport",
    "Scavenger",
    "SweepResult",
    "SweptPage",
    "canonical_build",
    "canonical_workload",
    "check_image",
    "check_recovery",
    "compact",
    "copy_all_files",
    "copy_file",
    "crash_point_sweep",
    "duplicate_pack",
    "make_serial",
    "page_number_from_label",
    "prefix_consistent",
    "recover_directory",
    "scavenge",
    "snapshot_files",
]
