"""The file-system facade: formatting, mounting, naming, serial discipline.

Ties together pages, files, the allocator, directories, and the disk
descriptor into the object most programs use.  Everything here is built
from the smaller components, all of which remain public -- the openness
principle of section 1: "when this happens, we try as far as possible to
make the small components accessible to the user as well as the large
ones."
"""

from __future__ import annotations

from typing import List, Optional

from ..disk.drive import DiskDrive
from ..disk.geometry import NIL
from ..errors import DirectoryError, FileFormatError, FileNotFound, HintFailed
from .allocator import PageAllocator
from .descriptor import (
    BOOT_PAGE_ADDRESS,
    DESCRIPTOR_LEADER_ADDRESS,
    DESCRIPTOR_NAME,
    DiskDescriptor,
)
from .directory import DirEntry, Directory
from .file import AltoFile
from .names import FileId, FullName, make_serial, next_usable_counter
from .page import PageIO

#: Default name of the root directory.
ROOT_DIRECTORY_NAME = "SysDir"

#: Serial counters are leased to the in-memory file system in blocks of this
#: size; the descriptor stores the lease bound, so a crash can skip at most
#: one block of serials but can never reuse one.
SERIAL_LEASE = 64


class FileSystem:
    """One mounted (or freshly formatted) Alto file system."""

    def __init__(
        self,
        drive: DiskDrive,
        allocator: PageAllocator,
        descriptor_file: AltoFile,
        root: Directory,
        serial_counter: int,
        serial_lease: int,
    ) -> None:
        self.drive = drive
        self.page_io = PageIO(drive)
        self.allocator = allocator
        self.descriptor_file = descriptor_file
        self.root = root
        self._counter = serial_counter
        self._lease = serial_lease
        # On a caching drive, keep the two hot singletons resident: the
        # descriptor leader at its standard address and the root leader.
        self.page_io.pin(DESCRIPTOR_LEADER_ADDRESS)
        self.page_io.pin(root.full_name().address)

    # ------------------------------------------------------------------------
    # Formatting and mounting
    # ------------------------------------------------------------------------

    @classmethod
    def format(cls, drive: DiskDrive, root_name: str = ROOT_DIRECTORY_NAME) -> "FileSystem":
        """Initialize an empty file system on a fresh pack.

        Reserves address 0 for the boot file's first page, pins the
        descriptor leader at address 1, creates the root directory, and
        writes the descriptor (twice, so the stored map reflects the
        descriptor's own pages).
        """
        page_io = PageIO(drive)
        allocator = PageAllocator(drive.shape)
        allocator.reserve([BOOT_PAGE_ADDRESS])

        now = round(drive.clock.now_s)
        counter = 1
        descriptor_fid = FileId(make_serial(counter))
        counter = next_usable_counter(counter)
        descriptor_file = AltoFile.create(
            page_io, allocator, descriptor_fid, DESCRIPTOR_NAME, now=now,
            near=DESCRIPTOR_LEADER_ADDRESS,
        )
        if descriptor_file.leader_address() != DESCRIPTOR_LEADER_ADDRESS:
            raise FileFormatError(
                f"descriptor leader landed at {descriptor_file.leader_address()}, "
                f"expected {DESCRIPTOR_LEADER_ADDRESS} (pack not fresh?)"
            )

        root_fid = FileId(make_serial(counter, directory=True))
        counter = next_usable_counter(counter)
        root_file = AltoFile.create(page_io, allocator, root_fid, root_name, now=now)
        root = Directory(root_file)
        root.add(root_name, root_file.full_name())
        root.add(DESCRIPTOR_NAME, descriptor_file.full_name())

        fs = cls(
            drive,
            allocator,
            descriptor_file,
            root,
            serial_counter=counter,
            serial_lease=counter + SERIAL_LEASE,
        )
        fs.sync()  # first write sizes the descriptor file...
        fs.sync()  # ...second write stores the now-stable map
        return fs

    @classmethod
    def mount(cls, drive: DiskDrive) -> "FileSystem":
        """Mount an existing file system from its standard addresses.

        Raises :class:`FileFormatError` or :class:`HintFailed` when the
        descriptor or root cannot be reached -- the caller's recovery is the
        Scavenger (section 3.5), after which mounting succeeds.
        """
        page_io = PageIO(drive)
        label = drive.read_label(DESCRIPTOR_LEADER_ADDRESS)
        from .names import page_number_from_label

        if not label.in_use or page_number_from_label(label) != 0:
            raise FileFormatError(
                f"address {DESCRIPTOR_LEADER_ADDRESS} does not hold a leader page; scavenge"
            )
        fid = FileId.from_label(label)

        # Bootstrap with an all-busy allocator: mounting only reads.
        bootstrap = PageAllocator(drive.shape, [False] * drive.shape.total_sectors())
        descriptor_file = AltoFile.open(page_io, bootstrap, FullName(fid, 0, DESCRIPTOR_LEADER_ADDRESS))
        if descriptor_file.name != DESCRIPTOR_NAME:
            raise FileFormatError(
                f"file at standard address is {descriptor_file.name!r}, not {DESCRIPTOR_NAME!r}"
            )
        from ..words import bytes_to_words

        descriptor = DiskDescriptor.unpack(drive.shape, bytes_to_words(descriptor_file.read_data()))

        allocator = descriptor.allocator()
        allocator.reserve([BOOT_PAGE_ADDRESS, DESCRIPTOR_LEADER_ADDRESS])
        descriptor_file.allocator = allocator

        root_file = AltoFile.open(page_io, allocator, descriptor.root_directory)
        lease = descriptor.serial_counter
        return cls(
            drive,
            allocator,
            descriptor_file,
            Directory(root_file),
            serial_counter=lease,
            serial_lease=lease,
        )

    # ------------------------------------------------------------------------
    # Time and identity
    # ------------------------------------------------------------------------

    def now(self) -> int:
        """Simulated-clock seconds, used for leader dates."""
        return round(self.drive.clock.now_s)

    def new_fid(self, directory: bool = False) -> FileId:
        """Hand out a fresh file identity, honouring the serial lease."""
        counter = self._counter
        self._counter = next_usable_counter(counter)
        if self._counter >= self._lease:
            self._lease = self._counter + SERIAL_LEASE
            self.sync()
        return FileId(make_serial(counter, directory=directory))

    # ------------------------------------------------------------------------
    # The descriptor (map + lease + root hint)
    # ------------------------------------------------------------------------

    def sync(self) -> None:
        """Write the descriptor: allocation map, serial lease, root hint.

        The map is a hint (section 3.3); syncing just makes it fresher.
        """
        from ..words import words_to_bytes

        with self.drive.clock.obs.span("fs.sync", "fs"):
            descriptor = DiskDescriptor(
                shape=self.drive.shape,
                serial_counter=self._lease,
                root_directory=self.root.full_name(),
                free_map_words=self.allocator.pack(),
            )
            self.descriptor_file.write_data(words_to_bytes(descriptor.pack()))
            self.flush()

    def flush(self) -> int:
        """Write back any buffered data writes (write-back cache); a no-op
        on a plain drive.  Returns the number of sectors written back."""
        flush = getattr(self.drive, "flush", None)
        return flush() if flush is not None else 0

    # ------------------------------------------------------------------------
    # File operations by name
    # ------------------------------------------------------------------------

    def create_file(
        self,
        name: str,
        directory: Optional[Directory] = None,
        is_directory: bool = False,
        near: Optional[int] = None,
    ) -> AltoFile:
        """Create a file and enter it in *directory* (default: root)."""
        target = directory if directory is not None else self.root
        if target.lookup(name) is not None:
            raise DirectoryError(f"{name!r} already exists in {target.name!r}")
        with self.drive.clock.obs.span("fs.create", "fs", file=name):
            fid = self.new_fid(directory=is_directory)
            file = AltoFile.create(self.page_io, self.allocator, fid, name, now=self.now(), near=near)
            target.add(name, file.full_name())
        return file

    def create_directory(self, name: str, parent: Optional[Directory] = None) -> Directory:
        """Create a new directory file (an ordinary file with the reserved
        directory serial bit) and enter it in *parent* (default: root)."""
        return Directory(self.create_file(name, directory=parent, is_directory=True))

    def open_entry(self, entry: DirEntry) -> AltoFile:
        """Open a file from a directory entry, using its address hint."""
        return AltoFile.open(self.page_io, self.allocator, entry.full_name)

    def open_file(self, name: str, directory: Optional[Directory] = None) -> AltoFile:
        """Open by string name.  A stale entry hint raises
        :class:`HintFailed`; the full recovery ladder lives in
        :mod:`repro.fs.hints`."""
        target = directory if directory is not None else self.root
        with self.drive.clock.obs.span("fs.open", "fs", file=name):
            return self.open_entry(target.require(name))

    def open_directory(self, name: str, parent: Optional[Directory] = None) -> Directory:
        return Directory(self.open_file(name, directory=parent))

    def delete_file(self, name: str, directory: Optional[Directory] = None) -> None:
        """Delete the file and remove its entry from *directory*."""
        target = directory if directory is not None else self.root
        with self.drive.clock.obs.span("fs.delete", "fs", file=name):
            entry = target.require(name)
            file = self.open_entry(entry)
            file.delete()
            target.remove(name)

    def rename_file(self, old: str, new: str, directory: Optional[Directory] = None) -> None:
        """Rename both the directory entry and the leader name."""
        target = directory if directory is not None else self.root
        if target.lookup(new) is not None:
            raise DirectoryError(f"{new!r} already exists in {target.name!r}")
        entry = target.require(old)
        file = self.open_entry(entry)
        file.rename(new)
        target.remove(old)
        target.add(new, file.full_name())

    def list_files(self, directory: Optional[Directory] = None) -> List[str]:
        target = directory if directory is not None else self.root
        return target.names()

    # ------------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------------

    def free_pages(self) -> int:
        return self.allocator.count_free()

    def __repr__(self) -> str:
        return f"FileSystem({self.drive.shape.name}, free={self.free_pages()})"
