"""Page allocation: the bit-table map, which is only a hint (section 3.3).

"Note that the allocation map is a hint because the absolute information
about which pages are free is contained in the labels.  If the map says
that a page is free, the allocator marks it busy when allocating it, and
when the label check described above fails, the allocator is called again
to obtain another page.  Thus a page improperly marked free in the map
results in a little extra one-time disk activity.  A page improperly marked
busy will never be allocated; such lost pages are recovered by the
Scavenger."

``PageAllocator`` implements exactly that protocol: candidates come from
the map, but the *claim* -- a check-that-free then label write -- is what
actually allocates, and a failed claim just marks the liar busy and moves
on.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..disk.geometry import DiskShape, NIL
from ..disk.sector import Label
from ..errors import DiskFull, PageNotFree
from ..words import WORD_MASK
from .page import PageIO

#: Map bits per word when serialized into the disk descriptor.
BITS_PER_WORD = 16


class PageAllocator:
    """The bit-table allocation map plus the claim protocol."""

    def __init__(self, shape: DiskShape, free: Optional[Sequence[bool]] = None) -> None:
        self.shape = shape
        total = shape.total_sectors()
        if free is None:
            self._free: List[bool] = [True] * total
        else:
            if len(free) != total:
                raise ValueError(f"map has {len(free)} bits, disk has {total} sectors")
            self._free = list(free)
        #: Pages whose map bit lied (kept for diagnostics/benchmarks).
        self.map_lies = 0

    # ------------------------------------------------------------------------
    # Map maintenance (hints only; no disk traffic)
    # ------------------------------------------------------------------------

    def is_free(self, address: int) -> bool:
        self.shape.check_address(address)
        return self._free[address]

    def mark_busy(self, address: int) -> None:
        self.shape.check_address(address)
        self._free[address] = False

    def mark_free(self, address: int) -> None:
        self.shape.check_address(address)
        self._free[address] = True

    def reserve(self, addresses: Sequence[int]) -> None:
        """Mark well-known addresses (boot page, descriptor leader) busy."""
        for address in addresses:
            self.mark_busy(address)

    def count_free(self) -> int:
        return sum(self._free)

    # ------------------------------------------------------------------------
    # Candidate selection
    # ------------------------------------------------------------------------

    def candidates(self, near: Optional[int] = None) -> Iterator[int]:
        """Free addresses, nearest-first to *near* (locality heuristic).

        Addresses are cylinder-major, so address distance tracks arm travel.
        """
        total = self.shape.total_sectors()
        if near is None or near == NIL:
            for address in range(total):
                if self._free[address]:
                    yield address
            return
        self.shape.check_address(near)
        for distance in range(total):
            for address in (near + distance, near - distance):
                if distance == 0 and address != near:
                    continue
                if 0 <= address < total and self._free[address]:
                    yield address

    # ------------------------------------------------------------------------
    # The claim protocol
    # ------------------------------------------------------------------------

    def allocate(
        self,
        page_io: PageIO,
        label: Label,
        data: Sequence[int],
        near: Optional[int] = None,
    ) -> int:
        """Allocate a page and perform its first write, atomically per 3.3.

        Picks map candidates nearest *near*; each candidate is marked busy,
        then claimed on disk (check-free + label write, costing the
        allocate revolution).  A candidate whose label is not actually free
        stays marked busy -- the map told a lie -- and the next candidate is
        tried.  Raises :class:`DiskFull` when the map offers nothing.
        """
        obs = page_io.drive.clock.obs
        with obs.span("fs.allocate", "fs",
                      near=near if near is not None else NIL) as span:
            tried = 0
            for address in self.candidates(near):
                tried += 1
                self.mark_busy(address)
                try:
                    page_io.claim(address, label, data)
                except PageNotFree:
                    self.map_lies += 1
                    obs.counter("fs.alloc.map_lies").inc()
                    continue
                obs.counter("fs.alloc.allocated").inc()
                span.annotate(address=address, tried=tried)
                return address
            raise DiskFull(f"no free page on {self.shape.name} ({self.count_free()} map bits free)")

    def release(self, page_io: PageIO, name) -> None:
        """Free a page on disk (ones into label and value), then in the map."""
        obs = page_io.drive.clock.obs
        with obs.span("fs.free", "fs", address=name.address):
            page_io.release(name)
            page_io.invalidate(name.address)  # a freed page earns no cache space
            self.mark_free(name.address)
            obs.counter("fs.alloc.freed").inc()

    # ------------------------------------------------------------------------
    # Serialization (for the disk descriptor) and reconstruction
    # ------------------------------------------------------------------------

    def pack(self) -> List[int]:
        """Serialize the map to words, 16 sectors per word, bit set = free."""
        total = self.shape.total_sectors()
        words = []
        for base in range(0, total, BITS_PER_WORD):
            w = 0
            for bit in range(min(BITS_PER_WORD, total - base)):
                if self._free[base + bit]:
                    w |= 1 << bit
            words.append(w)
        return words

    @classmethod
    def unpack(cls, shape: DiskShape, words: Sequence[int]) -> "PageAllocator":
        total = shape.total_sectors()
        expected = (total + BITS_PER_WORD - 1) // BITS_PER_WORD
        if len(words) < expected:
            raise ValueError(f"map needs {expected} words, got {len(words)}")
        free = []
        for address in range(total):
            w = words[address // BITS_PER_WORD]
            free.append(bool(w & (1 << (address % BITS_PER_WORD))))
        return cls(shape, free)

    @classmethod
    def map_word_count(cls, shape: DiskShape) -> int:
        return (shape.total_sectors() + BITS_PER_WORD - 1) // BITS_PER_WORD

    @classmethod
    def from_labels(cls, shape: DiskShape, labels: Sequence[Label]) -> "PageAllocator":
        """Rebuild the map from a label sweep (the scavenger's job): free
        exactly where the label says free; bad pages are never free."""
        if len(labels) != shape.total_sectors():
            raise ValueError("need one label per sector")
        return cls(shape, [label.is_free for label in labels])
