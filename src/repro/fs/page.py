"""Page-level operations by full name (section 3.1).

"The basic operations on a page are to read and write the data, and to read
the links, given the full name.  Note that it is easy to go from the full
name of a page to the full names of the next and previous pages."

Every operation here validates the page's absolute identity with a hardware
label check before touching data, and converts a failed check into
:class:`~repro.errors.HintFailed` -- the signal that drives the recovery
ladder of section 3.6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..disk.drive import DiskDrive
from ..disk.geometry import NIL
from ..disk.sector import Label, value_words
from ..errors import AddressOutOfRange, HintFailed, LabelCheckError, PageNotFree
from .names import FileId, FullName, page_number_from_label


@dataclass(frozen=True)
class PageContents:
    """What one page operation yields: the true label and (optionally) data."""

    name: FullName
    label: Label
    value: Optional[List[int]] = None

    @property
    def next_name(self) -> Optional[FullName]:
        """Full name of the next page, from the NL hint (None at end)."""
        if self.label.next_link == NIL:
            return None
        return self.name.sibling(self.name.page_number + 1, self.label.next_link)

    @property
    def prev_name(self) -> Optional[FullName]:
        """Full name of the previous page, from the PL hint (None at start)."""
        if self.label.prev_link == NIL:
            return None
        if self.name.page_number == 0:
            return None
        return self.name.sibling(self.name.page_number - 1, self.label.prev_link)

    @property
    def is_last(self) -> bool:
        return self.label.next_link == NIL

    @property
    def byte_length(self) -> int:
        return self.label.length


class PageIO:
    """Page operations on one drive, all guarded by label checks."""

    def __init__(self, drive: DiskDrive) -> None:
        self.drive = drive

    # -- guarded data operations (one disk pass each) ----------------------------

    def read(self, name: FullName) -> PageContents:
        """Read a page's data, confirming its absolute identity first."""
        self._require_hint(name)
        obs = self.drive.clock.obs
        if obs.tracing:
            with obs.span("fs.page.read", "fs",
                          address=name.address, page=name.page_number):
                return self._read(name)
        return self._read(name)

    def _read(self, name: FullName) -> PageContents:
        try:
            result = self.drive.check_label_read_value(name.address, name.check_label())
        except (LabelCheckError, AddressOutOfRange) as exc:
            raise HintFailed(f"page {name} is not at its hinted address") from exc
        return PageContents(name=name, label=result.label_object(), value=result.value)

    def read_label(self, name: FullName) -> Label:
        """Read (and verify) just the label -- the cheap way to get links."""
        self._require_hint(name)
        obs = self.drive.clock.obs
        if obs.tracing:
            with obs.span("fs.page.read_label", "fs", address=name.address):
                return self._read_label(name)
        return self._read_label(name)

    def _read_label(self, name: FullName) -> Label:
        try:
            result = self.drive.check_label(name.address, name.check_label())
        except (LabelCheckError, AddressOutOfRange) as exc:
            raise HintFailed(f"page {name} is not at its hinted address") from exc
        return result.label_object()

    def write(self, name: FullName, data: Sequence[int]) -> None:
        """Overwrite a page's data words; the label (including L) is untouched.

        "On any other write the label is checked, at no cost in time"
        (section 3.3) -- this is that ordinary, single-pass write.
        """
        self._require_hint(name)
        obs = self.drive.clock.obs
        if obs.tracing:
            with obs.span("fs.page.write", "fs",
                          address=name.address, page=name.page_number):
                return self._write(name, data)
        return self._write(name, data)

    def _write(self, name: FullName, data: Sequence[int]) -> None:
        try:
            self.drive.check_label_write_value(name.address, name.check_label(), value_words(data))
        except (LabelCheckError, AddressOutOfRange) as exc:
            raise HintFailed(f"page {name} is not at its hinted address") from exc

    # -- label-rewriting operations (two disk passes: one revolution) -------------

    def claim(self, address: int, new_label: Label, data: Sequence[int]) -> None:
        """First write after allocation: "the check is that the page is free.
        Then the proper label for the page is written" (section 3.3).

        Raises :class:`PageNotFree` when the allocation map lied.
        """
        try:
            self.drive.check_label_then_rewrite(address, Label.free(), new_label, value_words(data))
        except (LabelCheckError, AddressOutOfRange) as exc:
            raise PageNotFree(f"address {address} is not free") from exc

    def release(self, name: FullName) -> None:
        """Free a page: "its full name must be given, and the check is that
        the label is the right one.  Then ones are written into label and
        value" (section 3.3)."""
        self._require_hint(name)
        from ..disk.sector import VALUE_WORDS
        from ..words import ones_words

        try:
            self.drive.check_label_then_rewrite(
                name.address, name.check_label(), Label.free(), ones_words(VALUE_WORDS)
            )
        except (LabelCheckError, AddressOutOfRange) as exc:
            raise HintFailed(f"page {name} is not at its hinted address") from exc

    def rewrite_label(self, name: FullName, new_label: Label) -> None:
        """Change a page's label in place (the change-length operation of
        section 3.3): check the old label, then rewrite, keeping the data."""
        self._require_hint(name)
        try:
            self.drive.check_label_then_rewrite(name.address, name.check_label(), new_label)
        except (LabelCheckError, AddressOutOfRange) as exc:
            raise HintFailed(f"page {name} is not at its hinted address") from exc

    def update_label(self, name: FullName, transform) -> Label:
        """Read-check the label and rewrite a transformed version of it.

        Exactly section 3.3's change-length sequence: "the label of the
        last page is read and checked.  Then it is rewritten, possibly with
        new values of L and NL."  The check pass yields the current label
        (via the wildcard mechanism), *transform* maps it to the new label,
        and the second pass writes it -- two passes total, one revolution.
        Returns the new label.
        """
        self._require_hint(name)
        try:
            result = self.drive.check_label(name.address, name.check_label())
            current = result.label_object()
            new_label = transform(current)
            self.drive.write_label_value(
                name.address, new_label, self.drive.current_value(name.address)
            )
            return new_label
        except (LabelCheckError, AddressOutOfRange) as exc:
            raise HintFailed(f"page {name} is not at its hinted address") from exc

    # -- link traversal -----------------------------------------------------------

    def follow(self, start: FullName, target_page: int) -> FullName:
        """Walk NL/PL links from *start* until page *target_page*.

        Returns a full name with a fresh, verified address hint.  Section
        3.6, option two: "it can follow links from that page, still avoiding
        the directory lookup."
        """
        current = start
        label = self.read_label(current)
        while current.page_number != target_page:
            if current.page_number < target_page:
                nxt = PageContents(current, label).next_name
                if nxt is None:
                    raise HintFailed(
                        f"file {current.fid.serial:#x} ends at page {current.page_number}, "
                        f"wanted {target_page}"
                    )
                current = nxt
            else:
                prev = PageContents(current, label).prev_name
                if prev is None:
                    raise HintFailed(f"cannot walk back past page {current.page_number}")
                current = prev
            label = self.read_label(current)
        return current

    # -- cache passthroughs (no-ops on a plain drive) -----------------------------

    def invalidate(self, address: int) -> None:
        """Tell a caching drive that *address*'s cached copy is moot (the
        page was freed, or its hint proved stale)."""
        invalidate = getattr(self.drive, "invalidate", None)
        if invalidate is not None:
            invalidate(address)

    def pin(self, address: int) -> None:
        """Keep *address* resident in a caching drive (hot singletons)."""
        pin = getattr(self.drive, "pin", None)
        if pin is not None:
            pin(address)

    @staticmethod
    def _require_hint(name: FullName) -> None:
        if not name.has_address_hint:
            raise HintFailed(f"page {name} has no address hint; resolve it first")
