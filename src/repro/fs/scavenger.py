"""The Scavenger (section 3.5).

"By reading all the labels on the disk, we can check that all the links are
correct (reconstructing any that prove faulty), obtain full names for all
existing files, and produce a list of free pages. ... We can then read all
the directories and verify that each entry points to page 0 of an existing
file, fixing up the address if necessary and detecting entries which point
elsewhere.  If any file remains unaccounted for by directory entries, we
can make a new entry for it in the ma[i]n directory, using its leader name.
...  When it is complete, all hints have been recomputed from absolutes,
and any inconsistencies ... have been detected."

The scavenger needs no mounted file system -- it *produces* one.  It reads
every label (one revolution per track, since chained label reads follow the
platter), sorts them by absolute name, repairs links, rebuilds the
allocation map, verifies every directory, rescues nameless files into the
main directory under their leader names, marks permanently bad pages, and
rewrites the disk descriptor.  After ``scavenge()`` returns,
``FileSystem.mount`` succeeds.

CPU costs (table inserts, sorting, entry checks) are charged to the
simulated clock so the end-to-end time is comparable with the paper's
"about a minute for a 2.5 megabyte disk".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..disk.drive import Action, DiskDrive, PartCommand
from ..disk.geometry import NIL
from ..disk.sector import Header, Label, SERIAL_BAD, SERIAL_FREE, VALUE_WORDS
from ..errors import (
    BadSectorError,
    DirectoryError,
    FileFormatError,
    FileNotFound,
    HintFailed,
    SectorChecksumError,
)
from ..words import bytes_to_words, ones_words, words_to_bytes, zero_words
from .allocator import PageAllocator
from .descriptor import (
    BOOT_PAGE_ADDRESS,
    DESCRIPTOR_LEADER_ADDRESS,
    DESCRIPTOR_NAME,
    DiskDescriptor,
)
from .directory import Directory, ENTRY_FILE, _FIXED_ENTRY_WORDS
from .file import AltoFile, FULL_PAGE
from .filesystem import ROOT_DIRECTORY_NAME, SERIAL_LEASE
from .leader import LeaderPage, MAX_NAME_LENGTH
from .names import (
    FileId,
    FullName,
    ORDINARY_SERIAL_FLAG,
    PAGE_NUMBER_BIAS,
    make_serial,
    next_usable_counter,
    page_number_from_label,
    serial_counter,
)
from .page import PageIO

#: CPU cost model (microseconds), calibrated to a 16-bit machine with 800 ns
#: memory: inserting one 48-bit table entry, one sort comparison-and-swap,
#: and checking one directory entry.
CPU_PER_LABEL_US = 800
CPU_PER_COMPARE_US = 60
CPU_PER_ENTRY_US = 400
CPU = "cpu"


@dataclass
class SweptPage:
    """One in-use label seen during the sweep (the 48-bit-per-sector table).

    The paper's table stores the absolute name in 48 bits per sector; we
    carry the links and length too (they are re-readable, but keeping them
    saves a second sweep) and account the memory budget separately.
    """

    address: int
    serial: int
    version: int
    page_number: int  # unbiased
    length: int
    next_link: int
    prev_link: int

    def key(self) -> Tuple[int, int, int]:
        return (self.serial, self.version, self.page_number)


@dataclass
class ScavengeReport:
    """Everything the scavenger found and did."""

    sectors_swept: int = 0
    files_found: int = 0
    directories_found: int = 0
    free_pages: int = 0
    bad_sectors: List[int] = field(default_factory=list)
    garbage_labels_freed: int = 0
    duplicate_pages_freed: int = 0
    headless_chains_freed: int = 0
    torn_sectors_reclaimed: int = 0
    pages_reconstructed: int = 0
    truncated_files: List[Tuple[int, int, int]] = field(default_factory=list)
    links_repaired: int = 0
    ragged_last_pages: List[Tuple[int, int]] = field(default_factory=list)
    entries_fixed: int = 0
    entries_nulled: int = 0
    directories_rebuilt: int = 0
    orphans_rescued: List[str] = field(default_factory=list)
    leaders_rewritten: int = 0
    descriptor_recreated: bool = False
    root_recreated: bool = False
    elapsed_s: float = 0.0
    breakdown_ms: Dict[str, float] = field(default_factory=dict)
    table_entries: int = 0
    table_bits_per_sector: int = 48
    table_fits_in_memory: bool = True

    def repairs_made(self) -> int:
        return (
            self.garbage_labels_freed
            + self.duplicate_pages_freed
            + self.headless_chains_freed
            + self.torn_sectors_reclaimed
            + self.pages_reconstructed
            + self.links_repaired
            + self.entries_fixed
            + self.entries_nulled
            + len(self.orphans_rescued)
            + self.leaders_rewritten
        )


class Scavenger:
    """Reconstructs a file system's hints (and structure) from absolutes."""

    def __init__(self, drive: DiskDrive) -> None:
        self.drive = drive
        self.page_io = PageIO(drive)
        self.report = ScavengeReport()
        # State built up across phases:
        self._pages: List[SweptPage] = []
        self._free: Set[int] = set()
        self._value_bad: Set[int] = set()
        self._files: Dict[Tuple[int, int], Dict[int, SweptPage]] = {}
        self._allocator: Optional[PageAllocator] = None
        self._max_counter = 0
        self._descriptor_key: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------------

    def scavenge(self) -> ScavengeReport:
        """Run the full pass; afterwards ``FileSystem.mount`` succeeds."""
        obs = self.drive.clock.obs
        watch = self.drive.clock.stopwatch()
        with obs.span("fs.scavenge", "fs") as span:
            # The sweep reads absolutes; a write-back cache on this drive must
            # first put the platter in its logically current state and then get
            # out of the way (every cached copy is just a hint).
            settle = getattr(self.drive, "flush_and_invalidate", None)
            if settle is not None:
                settle()
            with obs.span("scavenge.sweep", "scavenge"):
                self._sweep()
            with obs.span("scavenge.sort", "scavenge"):
                self._sort_and_group()
            with obs.span("scavenge.repair_files", "scavenge"):
                self._repair_files()
            with obs.span("scavenge.rebuild_map", "scavenge"):
                self._rebuild_map()
            with obs.span("scavenge.recover_root", "scavenge"):
                root = self._recover_root()
            with obs.span("scavenge.verify_directories", "scavenge"):
                referenced = self._verify_directories(root)
            with obs.span("scavenge.rescue_orphans", "scavenge"):
                self._rescue_orphans(root, referenced)
            with obs.span("scavenge.rewrite_descriptor", "scavenge"):
                self._rewrite_descriptor(root)
            # Recovery is only recovery if it survives the next crash: push the
            # scavenger's own repairs out of any write-back buffer.
            if settle is not None:
                settle()
            span.annotate(repairs=self.report.repairs_made(),
                          files=self.report.files_found)
        obs.counter("fs.scavenge.runs").inc()
        self.report.elapsed_s = watch.elapsed_s
        self.report.breakdown_ms = watch.breakdown_ms()
        return self.report

    # ------------------------------------------------------------------------
    # Phase 1: the label sweep
    # ------------------------------------------------------------------------

    def _sweep(self) -> None:
        """Read every label in physical order (one revolution per track,
        because chained label reads ride the rotation), deferring repairs."""
        shape = self.drive.shape
        garbage: List[Tuple[int, List[int]]] = []
        # Physical order is linear-address order (compose() is the mixed-
        # radix expansion), so the cylinder/head/sector walk is a flat range
        # taken one cylinder at a time.
        per_cylinder = shape.heads * shape.sectors_per_track
        for cylinder in range(shape.cylinders):
            base = cylinder * per_cylinder
            for address in range(base, base + per_cylinder):
                # Label and value ride the same revolution; reading both
                # costs nothing extra and lets the controller verify the
                # value checksum in passing (torn writes surface here).
                try:
                    result = self.drive.read_label_value(address)
                    label = Label.unpack(result.label)
                except SectorChecksumError as exc:
                    if exc.part == "value":
                        # The label still identifies the page; note the
                        # unreadable value for the file-repair phase.
                        label = self.drive.read_label(address)
                        self._value_bad.add(address)
                    else:
                        # The page's identity itself was torn: reclaim
                        # the sector (fresh writes lay down checksums).
                        self._reclaim_torn(address)
                        continue
                except BadSectorError:
                    self.report.bad_sectors.append(address)
                    continue
                self._classify(address, label, garbage)
            # Table maintenance overlaps the head switch / seek in the real
            # scavenger; we charge it in bulk per cylinder.
            self.drive.clock.advance_us(per_cylinder * CPU_PER_LABEL_US, CPU)
        self.report.sectors_swept = shape.total_sectors()
        self.report.table_entries = len(self._pages)
        # Memory-budget check (section 3.5): 48 bits = 3 words per sector.
        from ..memory.core import MEMORY_WORDS

        self.report.table_fits_in_memory = 3 * shape.total_sectors() <= MEMORY_WORDS
        # Free the garbage labels now (each costs the free revolution).
        for address, swept_words in garbage:
            self._rewrite_raw(address, swept_words, Label.free(), ones_words(VALUE_WORDS))
            self._free.add(address)
            self.report.garbage_labels_freed += 1

    def _classify(self, address: int, label: Label, garbage) -> None:
        serial = label.serial
        if serial == SERIAL_FREE:
            self._free.add(address)
            return
        if serial == SERIAL_BAD:
            self.report.bad_sectors.append(address)
            return
        if not self._parseable(label):
            garbage.append((address, label.pack()))
            return
        page = SweptPage(
            address=address,
            serial=label.serial,
            version=label.version,
            page_number=page_number_from_label(label),
            length=label.length,
            next_link=label.next_link,
            prev_link=label.prev_link,
        )
        self._pages.append(page)
        self._max_counter = max(self._max_counter, serial_counter(label.serial))

    @staticmethod
    def _parseable(label: Label) -> bool:
        """Is this a structurally valid in-use label?"""
        if not label.serial & ORDINARY_SERIAL_FLAG:
            return False
        if label.serial & 0xFFFF == 0:  # low serial word must be nonzero
            return False
        if not 1 <= label.version <= 0xFFFE:
            return False
        if label.page_number < PAGE_NUMBER_BIAS or label.page_number == 0xFFFF:
            return False
        if label.length > FULL_PAGE:
            return False
        return True

    # ------------------------------------------------------------------------
    # Phase 2: sort by absolute name
    # ------------------------------------------------------------------------

    def _sort_and_group(self) -> None:
        n = len(self._pages)
        if n > 1:
            compares = round(n * (n.bit_length()))
            self.drive.clock.advance_us(compares * CPU_PER_COMPARE_US, CPU)
        self._pages.sort(key=SweptPage.key)
        for page in self._pages:
            self._files.setdefault((page.serial, page.version), {})
            bucket = self._files[(page.serial, page.version)]
            if page.page_number in bucket:
                # Duplicate absolute name: keep the first, free the other.
                self._free_swept(page)
                self.report.duplicate_pages_freed += 1
            else:
                bucket[page.page_number] = page

    # ------------------------------------------------------------------------
    # Phase 3: per-file structure and link repair
    # ------------------------------------------------------------------------

    def _repair_files(self) -> None:
        for (serial, version), bucket in list(self._files.items()):
            if 0 not in bucket:
                # No leader: the chain cannot be named; free it.
                for page in bucket.values():
                    self._free_swept(page)
                    self.report.headless_chains_freed += 1
                del self._files[(serial, version)]
                continue
            # Pages whose value a torn write left unreadable: a data page's
            # contents cannot be reinvented, so the page is freed (the file
            # is truncated at the gap below); a leader is rebuilt in place
            # with a synthesized name so the chain stays reachable.
            if self._value_bad:
                for pn in [p for p, pg in bucket.items() if pg.address in self._value_bad]:
                    page = bucket[pn]
                    self._value_bad.discard(page.address)
                    if pn == 0:
                        fresh = LeaderPage(name=f"Rescued.{serial:08x}.{version}")
                        self.drive.transfer(
                            page.address,
                            value=PartCommand(Action.WRITE, fresh.pack()),
                        )
                        self.report.leaders_rewritten += 1
                    else:
                        self._free_swept(bucket.pop(pn))
                        self.report.torn_sectors_reclaimed += 1
            # Contiguity: keep 0..k-1 up to the first gap.
            last = 0
            while last + 1 in bucket:
                last += 1
            dropped = [pn for pn in bucket if pn > last]
            if dropped:
                self.report.truncated_files.append((serial, version, len(dropped)))
                for pn in dropped:
                    self._free_swept(bucket.pop(pn))
            # A short page (L < 512) is an absolute end-of-file mark: only
            # the change-length operation on a *last* page writes one.  A
            # short page with successors is debris from a crash during an
            # extension (the new page was claimed before the old last page
            # was promoted to L = 512); freeing the successors recovers the
            # pre-extension contents exactly.
            short = next(
                (pn for pn in range(1, last) if bucket[pn].length < FULL_PAGE), None
            )
            if short is not None:
                debris = [pn for pn in bucket if pn > short]
                self.report.truncated_files.append((serial, version, len(debris)))
                for pn in debris:
                    self._free_swept(bucket.pop(pn))
                last = short
            if last == 0:
                # A bare leader with no data page (crash mid-create, or the
                # only data page was torn).  An AltoFile always has at least
                # pages 0 and 1; rather than lose a named file, rebuild an
                # empty page 1.  "We don't lose any files" (section 3.5).
                address = self._claim_free_near(bucket[0].address)
                if address is None:
                    # Pack completely full: nothing to rebuild with.
                    self._free_swept(bucket.pop(0))
                    del self._files[(serial, version)]
                    self.report.headless_chains_freed += 1
                    continue
                fid = FileId(serial, version)
                label = fid.label_for(1, length=0, next_link=NIL, prev_link=bucket[0].address)
                self.drive.write_header_label_value(
                    address,
                    Header(self.drive.image.pack_id, address),
                    label,
                    zero_words(VALUE_WORDS),
                )
                bucket[1] = SweptPage(address, serial, version, 1, 0, NIL, bucket[0].address)
                last = 1
                self.report.pages_reconstructed += 1
            # Links: reconstruct any that prove faulty.
            for pn in range(0, last + 1):
                page = bucket[pn]
                want_next = bucket[pn + 1].address if pn < last else NIL
                want_prev = bucket[pn - 1].address if pn > 0 else NIL
                if page.next_link != want_next or page.prev_link != want_prev:
                    self._repair_links(page, want_next, want_prev)
            # The last page's L should be < 512; a ragged end is reported
            # (L is absolute -- the scavenger will not invent data lengths).
            if bucket[last].length >= FULL_PAGE:
                self.report.ragged_last_pages.append((serial, version))

        self.report.files_found = len(self._files)
        self.report.directories_found = sum(
            1 for (serial, _v) in self._files if FileId(serial).is_directory
        )

    def _repair_links(self, page: SweptPage, want_next: int, want_prev: int) -> None:
        old = Label(
            serial=page.serial,
            version=page.version,
            page_number=page.page_number + PAGE_NUMBER_BIAS,
            length=page.length,
            next_link=page.next_link,
            prev_link=page.prev_link,
        )
        new = old.with_links(next_link=want_next, prev_link=want_prev)
        self._rewrite_raw(page.address, old.pack(), new)
        page.next_link, page.prev_link = want_next, want_prev
        self.report.links_repaired += 1

    def _claim_free_near(self, near: int) -> Optional[int]:
        """Deterministically take the free sector closest to *near*."""
        if not self._free:
            return None
        address = min(self._free, key=lambda a: (abs(a - near), a))
        self._free.discard(address)
        return address

    def _reclaim_torn(self, address: int) -> None:
        """A torn write destroyed this sector's identity; rewriting every
        part lays down fresh checksums and returns it to the free pool."""
        self.drive.write_header_label_value(
            address,
            Header(self.drive.image.pack_id, address),
            Label.free(),
            ones_words(VALUE_WORDS),
        )
        self._free.add(address)
        self.report.torn_sectors_reclaimed += 1

    def _free_swept(self, page: SweptPage) -> None:
        old = Label(
            serial=page.serial,
            version=page.version,
            page_number=page.page_number + PAGE_NUMBER_BIAS,
            length=page.length,
            next_link=page.next_link,
            prev_link=page.prev_link,
        )
        self._rewrite_raw(page.address, old.pack(), Label.free(), ones_words(VALUE_WORDS))
        self._free.add(page.address)

    def _rewrite_raw(
        self,
        address: int,
        expected_words: List[int],
        new_label: Label,
        new_value: Optional[List[int]] = None,
    ) -> None:
        """Check a label against the exact words we swept, then rewrite it
        (and optionally the value).  Two passes: the free/repair revolution."""
        self.drive.transfer(address, label=PartCommand(Action.CHECK, list(expected_words)))
        value = new_value if new_value is not None else self.drive.current_value(address)
        self.drive.transfer(
            address,
            label=PartCommand(Action.WRITE, new_label.pack()),
            value=PartCommand(Action.WRITE, list(value)),
        )

    # ------------------------------------------------------------------------
    # Phase 4: the allocation map, recomputed from absolutes
    # ------------------------------------------------------------------------

    def _rebuild_map(self) -> None:
        shape = self.drive.shape
        free = [False] * shape.total_sectors()
        for address in self._free:
            free[address] = True
        for address in self.report.bad_sectors:
            free[address] = False
        free[BOOT_PAGE_ADDRESS] = False
        self._allocator = PageAllocator(shape, free)
        self.report.free_pages = self._allocator.count_free()
        # Mark permanently bad pages in their labels so they are never used
        # (best effort: truly dead media rejects even the marking write).
        for address in self.report.bad_sectors:
            try:
                self.drive.transfer(address, label=PartCommand(Action.WRITE, Label.bad().pack()),
                                    value=PartCommand(Action.WRITE, ones_words(VALUE_WORDS)))
            except BadSectorError:
                pass

    # ------------------------------------------------------------------------
    # Phase 5: descriptor and root directory recovery
    # ------------------------------------------------------------------------

    def _open_swept_file(self, serial: int, version: int) -> AltoFile:
        bucket = self._files[(serial, version)]
        leader_name = FullName(FileId(serial, version), 0, bucket[0].address)
        file = AltoFile.open(self.page_io, self._allocator, leader_name)
        file.refresh_address_cache({pn: page.address for pn, page in bucket.items()})
        return file

    def _recover_root(self) -> Directory:
        """Find (or rebuild) the descriptor file and the root directory."""
        descriptor_key = self._find_descriptor()
        root_key = None
        if descriptor_key is not None:
            root_key = self._root_from_descriptor(descriptor_key)
        if root_key is None:
            root_key = self._largest_directory()
        if root_key is None:
            root = self._create_root()
        else:
            try:
                root = Directory(self._open_swept_file(*root_key))
            except (FileFormatError, HintFailed):
                root = self._create_root()
            else:
                try:
                    root.entries()
                except DirectoryError:
                    # A crash tore the root's entry list mid-rewrite.  "If a
                    # directory is destroyed, we don't lose any files, but we
                    # do lose some information": truncate it and re-seed the
                    # self-entry; everything it named is rescued as orphans.
                    root.file.write_data(b"")
                    root.add(ROOT_DIRECTORY_NAME, root.file.full_name())
                    self.report.directories_rebuilt += 1
        if descriptor_key is None:
            self._recreate_descriptor()
            # Claiming the standard address may have evicted one of the
            # root's own pages (the root can be created just above, on a
            # pack whose first free sector IS the standard address).
            # _evict_address keeps the swept table current but not this
            # live object, so reopen the root from the table — otherwise
            # the stale leader address ends up inside the new descriptor's
            # root hint and a later mount fails its label check.
            root = Directory(
                self._open_swept_file(root.file.fid.serial, root.file.fid.version)
            )
        # Make the root's DiskDescriptor entry name the true descriptor now,
        # so directory verification and orphan rescue see consistent state
        # (a stale copy elsewhere must not shadow the pinned one).
        descriptor = self._open_swept_file(*self._descriptor_key)
        root.add(DESCRIPTOR_NAME, descriptor.full_name(), replace=True)
        return root

    def _find_descriptor(self) -> Optional[Tuple[int, int]]:
        """The descriptor is the file whose leader sits at the standard
        address (the one absolute location on the pack)."""
        for key, bucket in self._files.items():
            if bucket[0].address == DESCRIPTOR_LEADER_ADDRESS:
                try:
                    file = self._open_swept_file(*key)
                except (FileFormatError, HintFailed):
                    return None
                if file.name == DESCRIPTOR_NAME:
                    self._descriptor_key = key
                    return key
                return None
        return None

    def _root_from_descriptor(self, key: Tuple[int, int]) -> Optional[Tuple[int, int]]:
        try:
            file = self._open_swept_file(*key)
            descriptor = DiskDescriptor.unpack(self.drive.shape, bytes_to_words(file.read_data()))
        except (FileFormatError, HintFailed, ValueError):
            return None
        fid = descriptor.root_directory.fid
        found = (fid.serial, fid.version)
        return found if found in self._files and fid.is_directory else None

    def _largest_directory(self) -> Optional[Tuple[int, int]]:
        """Fallback root: the directory with the most entries; ties go to
        the oldest serial (the main directory is created at format time)."""
        candidates = []
        for key, bucket in self._files.items():
            if not FileId(key[0]).is_directory:
                continue
            try:
                directory = Directory(self._open_swept_file(*key))
                entry_count = len(directory.entries())
            except (FileFormatError, HintFailed, DirectoryError):
                continue
            candidates.append((-entry_count, key[0], key[1], key))
        if not candidates:
            return None
        candidates.sort()
        return candidates[0][3]

    def _next_fid(self, directory: bool = False) -> FileId:
        self._max_counter = next_usable_counter(self._max_counter)
        return FileId(make_serial(self._max_counter, directory=directory))

    def _create_root(self) -> Directory:
        self.report.root_recreated = True
        now = round(self.drive.clock.now_s)
        fid = self._next_fid(directory=True)
        file = AltoFile.create(self.page_io, self._allocator, fid, ROOT_DIRECTORY_NAME, now=now)
        root = Directory(file)
        root.add(ROOT_DIRECTORY_NAME, file.full_name())
        self._register_new_file(file)
        return root

    def _recreate_descriptor(self) -> None:
        """Rebuild the descriptor file, evicting whatever squats at the
        standard address first, then claiming that address directly for the
        new leader (allocate-near cannot pin an exact sector)."""
        from ..disk.geometry import NIL
        from .leader import LeaderPage

        self.report.descriptor_recreated = True
        self._evict_address(DESCRIPTOR_LEADER_ADDRESS)
        now = round(self.drive.clock.now_s)
        fid = self._next_fid()
        leader = LeaderPage(name=DESCRIPTOR_NAME, created=now, written=now, read=now,
                            last_page_number=1)
        leader_label = fid.label_for(0, length=FULL_PAGE, next_link=NIL, prev_link=NIL)
        self.page_io.claim(DESCRIPTOR_LEADER_ADDRESS, leader_label, leader.pack())
        self._allocator.mark_busy(DESCRIPTOR_LEADER_ADDRESS)
        self._free.discard(DESCRIPTOR_LEADER_ADDRESS)
        page1_label = fid.label_for(1, length=0, next_link=NIL,
                                    prev_link=DESCRIPTOR_LEADER_ADDRESS)
        page1_address = self._allocator.allocate(
            self.page_io, page1_label, [], near=DESCRIPTOR_LEADER_ADDRESS
        )
        self._free.discard(page1_address)
        leader_name = FullName(fid, 0, DESCRIPTOR_LEADER_ADDRESS)
        self.page_io.rewrite_label(
            leader_name,
            fid.label_for(0, length=FULL_PAGE, next_link=page1_address, prev_link=NIL),
        )
        file = AltoFile.open(self.page_io, self._allocator, leader_name)
        self._register_new_file(file)
        self._descriptor_key = (fid.serial, fid.version)

    def _evict_address(self, address: int) -> None:
        """Move whichever page occupies *address* somewhere else, fixing its
        neighbours' links and the table."""
        if self._allocator.is_free(address):
            self._allocator.mark_busy(address)
            return
        victim = None
        for bucket in self._files.values():
            for page in bucket.values():
                if page.address == address:
                    victim = page
                    break
            if victim is not None:
                break
        if victim is None:
            # Bad sector or boot page squatting: nothing movable.
            self._allocator.mark_busy(address)
            return
        bucket = self._files.get((victim.serial, victim.version))
        value = self.drive.read_sector(address).value
        label = Label(
            serial=victim.serial,
            version=victim.version,
            page_number=victim.page_number + PAGE_NUMBER_BIAS,
            length=victim.length,
            next_link=victim.next_link,
            prev_link=victim.prev_link,
        )
        new_address = self._allocator.allocate(self.page_io, label, value)
        # Free the old copy and relink neighbours.
        self._free_swept(victim)
        self._free.discard(new_address)
        victim.address = new_address
        if bucket is not None:
            if victim.page_number - 1 in bucket:
                prev = bucket[victim.page_number - 1]
                self._repair_links(prev, want_next=new_address, want_prev=prev.prev_link)
                self.report.links_repaired -= 1  # bookkeeping move, not a repair
            if victim.page_number + 1 in bucket:
                nxt = bucket[victim.page_number + 1]
                self._repair_links(nxt, want_next=nxt.next_link, want_prev=new_address)
                self.report.links_repaired -= 1
        self._allocator.mark_busy(new_address)
        self._allocator.mark_free(address)
        self._allocator.mark_busy(address)  # reserved for the caller

    def _register_new_file(self, file: AltoFile) -> None:
        """Enter a file created during scavenging into the table."""
        key = (file.fid.serial, file.fid.version)
        bucket: Dict[int, SweptPage] = {}
        for pn in range(0, file.last_page_number + 1):
            name = file.page_name(pn)
            label = self.page_io.read_label(name)
            bucket[pn] = SweptPage(
                address=name.address,
                serial=file.fid.serial,
                version=file.fid.version,
                page_number=pn,
                length=label.length,
                next_link=label.next_link,
                prev_link=label.prev_link,
            )
        self._files[key] = bucket

    # ------------------------------------------------------------------------
    # Phase 6: directory verification
    # ------------------------------------------------------------------------

    def _verify_directories(self, root: Directory) -> Set[Tuple[int, int]]:
        """Check every directory entry against the table; fix stale address
        hints, null entries pointing nowhere.

        Returns the set of files referenced by directories *reachable from
        the root* -- a detached directory subtree does account for its files
        on paper, but they would be unfindable, so rescue treats them as
        orphans (the subtree's directories get re-entered in the root, which
        brings their contents back into view).
        """
        root_key = (root.file.fid.serial, root.file.fid.version)
        # Pass 1: repair every directory's entries (hints, dangling refs).
        per_directory: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}
        for key in sorted(self._files):
            fid = FileId(key[0], key[1])
            if not fid.is_directory:
                continue
            directory = root if key == root_key else None
            if directory is None:
                try:
                    directory = Directory(self._open_swept_file(*key))
                except (FileFormatError, HintFailed):
                    per_directory[key] = set()
                    continue  # damaged directory file; orphan rescue still works
            referenced_here: Set[Tuple[int, int]] = set()
            self._verify_one_directory(directory, referenced_here)
            per_directory[key] = referenced_here
        # Pass 2: breadth-first reachability from the root.
        reachable = {root_key}
        frontier = [root_key]
        while frontier:
            key = frontier.pop()
            for child in per_directory.get(key, ()):
                if FileId(child[0]).is_directory and child not in reachable:
                    if child in per_directory:
                        reachable.add(child)
                        frontier.append(child)
        referenced: Set[Tuple[int, int]] = set()
        for key in reachable:
            referenced.update(per_directory.get(key, ()))
        referenced.add(root_key)
        return referenced

    def _verify_one_directory(self, directory: Directory, referenced: Set) -> None:
        try:
            words = directory._words()
            parsed = list(Directory._parse(words))
        except DirectoryError:
            # "If a directory is destroyed, we don't lose any files, but we
            # do lose some information."  Truncate it; files it named will
            # be rescued as orphans.
            directory.file.write_data(b"")
            self.report.directories_rebuilt += 1
            return
        self.drive.clock.advance_us(len(parsed) * CPU_PER_ENTRY_US, CPU)
        changed = False
        for offset, length, entry in parsed:
            if entry is None:
                continue
            key = (entry.fid.serial, entry.fid.version)
            bucket = self._files.get(key)
            if bucket is None:
                # Points to a nonexistent file: null the entry.
                words[offset] = 0x0000 | length  # ENTRY_HOLE
                for i in range(1, length):
                    words[offset + i] = 0
                self.report.entries_nulled += 1
                changed = True
                continue
            referenced.add(key)
            true_address = bucket[0].address
            if entry.full_name.address != true_address:
                words[offset + 4] = true_address
                self.report.entries_fixed += 1
                changed = True
        if changed:
            directory.file.write_data(words_to_bytes(words))

    # ------------------------------------------------------------------------
    # Phase 7: orphan rescue via leader names
    # ------------------------------------------------------------------------

    def _rescue_orphans(self, root: Directory, referenced: Set[Tuple[int, int]]) -> None:
        """"If any file remains unaccounted for by directory entries, we can
        make a new entry for it in the main directory, using its leader
        name.  This is the sole function of the leader name." (section 3.5)
        """
        # Directories first: re-entering a detached directory in the root
        # brings its whole subtree back into view, so its contents need no
        # entries of their own.
        for key in sorted(self._files):
            if key in referenced or not FileId(key[0]).is_directory:
                continue
            self._rescue_one(root, key)
            referenced.add(key)
            self._absorb_directory_entries(key, referenced)
        for key in sorted(self._files):
            if key in referenced:
                continue
            self._rescue_one(root, key)
            referenced.add(key)

    def _absorb_directory_entries(self, key: Tuple[int, int], referenced: Set) -> None:
        """Mark everything reachable from directory *key* as referenced."""
        stack = [key]
        while stack:
            current = stack.pop()
            try:
                directory = Directory(self._open_swept_file(*current))
                entries = directory.entries()
            except (FileFormatError, HintFailed, DirectoryError):
                continue
            for entry in entries:
                child = (entry.fid.serial, entry.fid.version)
                if child in self._files and child not in referenced:
                    referenced.add(child)
                    if FileId(child[0]).is_directory:
                        stack.append(child)

    def _rescue_one(self, root: Directory, key: Tuple[int, int]) -> None:
        serial, version = key
        bucket = self._files[key]
        leader_name = FullName(FileId(serial, version), 0, bucket[0].address)
        try:
            contents = self.page_io.read(leader_name)
            leader = LeaderPage.unpack(contents.value)
            name = leader.name
        except (FileFormatError, HintFailed):
            # Corrupt leader: synthesize a name and rewrite the leader so
            # the file is at least reachable.
            name = f"Rescued.{serial:08x}.{version}"
            leader = LeaderPage(name=name)
            self.page_io.write(leader_name, leader.pack())
            self.report.leaders_rewritten += 1
        unique = self._unique_name(root, name)
        if unique != name:
            # Leader names must stay truthful: rename the leader too.
            try:
                contents = self.page_io.read(leader_name)
                leader = LeaderPage.unpack(contents.value).renamed(unique)
            except FileFormatError:
                leader = LeaderPage(name=unique)
            self.page_io.write(leader_name, leader.pack())
            self.report.leaders_rewritten += 1
        root.add(unique, leader_name)
        self.report.orphans_rescued.append(unique)

    @staticmethod
    def _unique_name(root: Directory, name: str) -> str:
        if root.lookup(name) is None:
            return name
        for attempt in range(2, 1000):
            suffix = f"!{attempt}"
            candidate = name[: MAX_NAME_LENGTH - len(suffix)] + suffix
            if root.lookup(candidate) is None:
                return candidate
        raise DirectoryError(f"could not find a unique name for rescued file {name!r}")

    # ------------------------------------------------------------------------
    # Phase 8: descriptor rewrite
    # ------------------------------------------------------------------------

    def _rewrite_descriptor(self, root: Directory) -> None:
        if self._descriptor_key is None:
            self._recreate_descriptor()
        file = self._open_swept_file(*self._descriptor_key)
        lease = self._max_counter + SERIAL_LEASE
        descriptor = DiskDescriptor(
            shape=self.drive.shape,
            serial_counter=lease,
            root_directory=root.full_name(),
            free_map_words=self._allocator.pack(),
        )
        file.write_data(words_to_bytes(descriptor.pack()))
        # Writing may have consumed pages; store the now-final map.
        descriptor.free_map_words = self._allocator.pack()
        file.write_data(words_to_bytes(descriptor.pack()))
        # Make sure the descriptor is in the root (it may have been lost).
        if root.lookup(DESCRIPTOR_NAME) is None:
            root.add(DESCRIPTOR_NAME, file.full_name())
        else:
            entry = root.require(DESCRIPTOR_NAME)
            if entry.full_name.address != file.leader_address():
                root.update_hint(DESCRIPTOR_NAME, file.leader_address())
                self.report.entries_fixed += 1


def scavenge(drive: DiskDrive) -> ScavengeReport:
    """Convenience wrapper: run a full scavenge on *drive*."""
    return Scavenger(drive).scavenge()
