"""The disk descriptor (section 3.3).

"A disk contains a file called the disk descriptor with a standard name and
disk address.  In it are: the allocation map, a bit table indicating which
pages are free (H); the disk shape ... (A); the name of the root directory
(H)."

We implement the *logical* description the paper endorses ("that's how we
should have done it"): the descriptor leader lives at a standard disk
address, and the descriptor contains the root directory's full name.  Disk
address 0 is reserved for the boot file's first page (section 4: "a disk
file whose first page is kept at a fixed location"), so the descriptor
leader is pinned at address 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..disk.geometry import DiskShape, NIL
from ..errors import FileFormatError
from ..words import from_double_word, to_double_word
from .allocator import PageAllocator
from .names import FileId, FullName

#: Standard disk addresses.
BOOT_PAGE_ADDRESS = 0
DESCRIPTOR_LEADER_ADDRESS = 1

#: Leader name of the descriptor file ("a standard name").
DESCRIPTOR_NAME = "DiskDescriptor"

_MAGIC = 0xD15C  # "disc"
_FORMAT_VERSION = 1
_HEADER_WORDS = 12


@dataclass
class DiskDescriptor:
    """Decoded descriptor contents.

    ``shape`` words are absolute; the allocation map and root-directory
    address are hints (the scavenger reconstructs both from labels).
    """

    shape: DiskShape
    serial_counter: int
    root_directory: FullName
    free_map_words: List[int]

    # ------------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------------

    def pack(self) -> List[int]:
        serial_high, serial_low = to_double_word(self.serial_counter)
        root_high, root_low = to_double_word(self.root_directory.fid.serial)
        header = [
            _MAGIC,
            _FORMAT_VERSION,
            self.shape.cylinders,
            self.shape.heads,
            self.shape.sectors_per_track,
            serial_high,
            serial_low,
            root_high,
            root_low,
            self.root_directory.fid.version,
            self.root_directory.address,
            len(self.free_map_words),
        ]
        assert len(header) == _HEADER_WORDS
        return header + list(self.free_map_words)

    @classmethod
    def unpack(cls, shape: DiskShape, words: Sequence[int]) -> "DiskDescriptor":
        """Decode; *shape* is the mounted drive's shape, validated against
        the absolute shape words on disk."""
        if len(words) < _HEADER_WORDS:
            raise FileFormatError(f"descriptor too short: {len(words)} words")
        if words[0] != _MAGIC:
            raise FileFormatError(f"bad descriptor magic {words[0]:#06x}")
        if words[1] != _FORMAT_VERSION:
            raise FileFormatError(f"unknown descriptor version {words[1]}")
        if (words[2], words[3], words[4]) != (shape.cylinders, shape.heads, shape.sectors_per_track):
            raise FileFormatError(
                f"descriptor shape ({words[2]}x{words[3]}x{words[4]}) does not match "
                f"drive {shape.name} ({shape.cylinders}x{shape.heads}x{shape.sectors_per_track})"
            )
        map_len = words[11]
        map_words = list(words[_HEADER_WORDS : _HEADER_WORDS + map_len])
        if len(map_words) != map_len:
            raise FileFormatError("descriptor allocation map truncated")
        root = FullName(
            FileId(from_double_word(words[7], words[8]), words[9]),
            page_number=0,
            address=words[10],
        )
        return cls(
            shape=shape,
            serial_counter=from_double_word(words[5], words[6]),
            root_directory=root,
            free_map_words=map_words,
        )

    # ------------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------------

    def allocator(self) -> PageAllocator:
        """Build a page allocator from the (hint) map."""
        return PageAllocator.unpack(self.shape, self.free_map_words)

    def with_map(self, allocator: PageAllocator) -> "DiskDescriptor":
        self.free_map_words = allocator.pack()
        return self

    @staticmethod
    def data_word_count(shape: DiskShape) -> int:
        """Exact descriptor size for *shape* (fixed, so rewriting the
        descriptor never changes its own page count)."""
        return _HEADER_WORDS + PageAllocator.map_word_count(shape)
