"""Multiple drives and cross-pack utilities.

Section 2: the machine has "one or two moving-head disk drives, each of
which can store 2.5 megabytes on a single removable pack", and section 5.2
notes that "a program using a large non-standard disk" just supplies its
own disk object and reuses the standard stream package.  These helpers are
the operator-level utilities that fall out: mounting a second pack,
copying files between packs, and duplicating whole packs.

Nothing here is privileged; it is all written against public interfaces
(the openness property at work).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..clock import SimClock
from ..disk.drive import DiskDrive
from ..disk.geometry import DiskShape
from ..disk.image import DiskImage
from ..errors import FileNotFound
from ..streams.disk_stream import open_read_stream, open_write_stream
from .directory import Directory
from .filesystem import FileSystem


class DrivePair:
    """Two spindles sharing one controller (and therefore one clock).

    The shared clock matters: transfers on either drive advance the same
    simulated time, exactly like two drives on one Alto.
    """

    def __init__(
        self,
        image0: DiskImage,
        image1: DiskImage,
        clock: Optional[SimClock] = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.drive0 = DiskDrive(image0, clock=self.clock)
        self.drive1 = DiskDrive(image1, clock=self.clock)

    def mount_both(self) -> tuple:
        return FileSystem.mount(self.drive0), FileSystem.mount(self.drive1)

    def format_both(self) -> tuple:
        return FileSystem.format(self.drive0), FileSystem.format(self.drive1)


def copy_file(
    source_fs: FileSystem,
    destination_fs: FileSystem,
    name: str,
    new_name: Optional[str] = None,
    replace: bool = False,
) -> int:
    """Copy one file between packs through the stream interface.

    Returns the bytes copied.  Dates are refreshed on the destination; the
    destination gets its own serial number (identity is per-pack).
    """
    new_name = new_name if new_name is not None else name
    source = open_read_stream(source_fs.open_file(name), update_dates=False)
    try:
        destination_file = destination_fs.open_file(new_name)
        if not replace:
            from ..errors import DirectoryError

            raise DirectoryError(f"{new_name!r} already exists on the destination pack")
    except FileNotFound:
        destination_file = destination_fs.create_file(new_name)
    sink = open_write_stream(destination_file)
    copied = 0
    while not source.endof():
        sink.put(source.get())
        copied += 1
    sink.close()
    source.close()
    return copied


def copy_all_files(
    source_fs: FileSystem,
    destination_fs: FileSystem,
    skip_system: bool = True,
) -> Dict[str, int]:
    """Copy every root-listed file to the destination pack.

    System files (the descriptor and the root directory itself) are skipped
    by default -- the destination has its own.  Returns name -> bytes.
    """
    from .descriptor import DESCRIPTOR_NAME

    skip = set()
    if skip_system:
        skip = {DESCRIPTOR_NAME.lower(), source_fs.root.name.lower(),
                destination_fs.root.name.lower()}
    copied: Dict[str, int] = {}
    for name in source_fs.list_files():
        if name.lower() in skip:
            continue
        copied[name] = copy_file(source_fs, destination_fs, name, replace=True)
    return copied


def duplicate_pack(source: DiskImage, destination: DiskImage) -> None:
    """Sector-exact pack duplication (the CopyDisk utility).

    The destination becomes byte-identical, including all hints -- which
    stay valid because hint addresses are pack-relative.
    """
    if source.shape != destination.shape:
        raise ValueError("packs have different shapes")
    destination.restore(source)
    destination.pack_id = source.pack_id + 1
    for sector in destination.sectors():
        sector.header = type(sector.header)(destination.pack_id, sector.header.address)
