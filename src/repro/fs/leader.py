"""The leader page (section 3.2).

"Page 0 is called the leader page, and contains all the properties of the
file other than its length and its data: dates of creation, last write, and
last read (A); a string called the leader name ... (A); the page number and
disk address of the last page (H); a maybe consecutive flag (H)."

The leader name is the file's survival kit: if every directory entry for
the file is destroyed, the scavenger re-enters the file in the main
directory under this name (section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Sequence

from ..disk.geometry import NIL
from ..disk.sector import VALUE_WORDS
from ..errors import FileFormatError
from ..words import (
    check_word,
    from_double_word,
    string_to_words,
    to_double_word,
    words_to_string,
    zero_words,
)

#: Words reserved for the leader name (BCPL coding: length byte + chars).
NAME_WORDS = 20
MAX_NAME_LENGTH = NAME_WORDS * 2 - 1

#: Leader value layout (word offsets).
_CREATED = 0
_WRITTEN = 2
_READ = 4
_NAME = 6
_LAST_PAGE_NUMBER = _NAME + NAME_WORDS  # 26
_LAST_PAGE_ADDRESS = _LAST_PAGE_NUMBER + 1  # 27
_CONSECUTIVE = _LAST_PAGE_ADDRESS + 1  # 28
LEADER_USED_WORDS = _CONSECUTIVE + 1


def check_name(name: str) -> str:
    """Validate a leader/directory name; returns it unchanged."""
    if not name:
        raise FileFormatError("file name must not be empty")
    if len(name) > MAX_NAME_LENGTH:
        raise FileFormatError(f"file name too long ({len(name)} > {MAX_NAME_LENGTH}): {name!r}")
    try:
        name.encode("ascii")
    except UnicodeEncodeError:
        raise FileFormatError(f"file name must be ASCII: {name!r}") from None
    return name


@dataclass(frozen=True)
class LeaderPage:
    """Decoded contents of a leader page.

    Dates are simulated-clock seconds.  ``last_page_number`` and
    ``last_page_address`` are hints (H): stale values cause an extra link
    walk, never wrong answers.  ``maybe_consecutive`` is the hint that the
    file's pages sit in consecutive sectors (section 3.6).
    """

    name: str
    created: int = 0
    written: int = 0
    read: int = 0
    last_page_number: int = 0
    last_page_address: int = NIL
    maybe_consecutive: bool = False

    def __post_init__(self) -> None:
        check_name(self.name)

    # -- serialization ------------------------------------------------------------

    def pack(self) -> List[int]:
        """Serialize to exactly one page value (256 words)."""
        words = zero_words(VALUE_WORDS)
        words[_CREATED : _CREATED + 2] = to_double_word(self.created)
        words[_WRITTEN : _WRITTEN + 2] = to_double_word(self.written)
        words[_READ : _READ + 2] = to_double_word(self.read)
        name_words = string_to_words(self.name, max_bytes=MAX_NAME_LENGTH)
        words[_NAME : _NAME + len(name_words)] = name_words
        words[_LAST_PAGE_NUMBER] = check_word(self.last_page_number, "last page number")
        words[_LAST_PAGE_ADDRESS] = check_word(self.last_page_address, "last page address")
        words[_CONSECUTIVE] = 1 if self.maybe_consecutive else 0
        return words

    @staticmethod
    def unpack(words: Sequence[int]) -> "LeaderPage":
        if len(words) != VALUE_WORDS:
            raise FileFormatError(f"leader page needs {VALUE_WORDS} words, got {len(words)}")
        try:
            name = words_to_string(words[_NAME : _NAME + NAME_WORDS])
        except ValueError as exc:
            raise FileFormatError(f"corrupt leader name: {exc}") from exc
        if not name:
            raise FileFormatError("leader page has an empty name")
        return LeaderPage(
            name=name,
            created=from_double_word(words[_CREATED], words[_CREATED + 1]),
            written=from_double_word(words[_WRITTEN], words[_WRITTEN + 1]),
            read=from_double_word(words[_READ], words[_READ + 1]),
            last_page_number=words[_LAST_PAGE_NUMBER],
            last_page_address=words[_LAST_PAGE_ADDRESS],
            maybe_consecutive=bool(words[_CONSECUTIVE]),
        )

    # -- functional updates ---------------------------------------------------------

    def touched(self, *, written: int = None, read: int = None) -> "LeaderPage":
        """A copy with access dates advanced."""
        out = self
        if written is not None:
            out = replace(out, written=written)
        if read is not None:
            out = replace(out, read=read)
        return out

    def with_last_page(self, page_number: int, address: int) -> "LeaderPage":
        """A copy with the last-page hint updated."""
        return replace(self, last_page_number=page_number, last_page_address=address)

    def with_consecutive(self, flag: bool) -> "LeaderPage":
        return replace(self, maybe_consecutive=flag)

    def renamed(self, name: str) -> "LeaderPage":
        return replace(self, name=check_name(name))
