"""Consistency checking: every invariant of section 3, verified in place.

Where the :class:`~repro.fs.scavenger.Scavenger` *repairs*, ``check_image``
merely *reports*: it inspects a pack's raw state (no timing, no writes) and
returns every violation of the paper's invariants it can find.  Tests use
it as their oracle; users can run it the way one runs fsck read-only.

Checked invariants:

* every label parses as free, bad, or a structurally valid in-use label;
* every file's pages number 0..n with no gaps or duplicates;
* page 0 of every file carries a parseable leader page;
* NL/PL links agree with the absolute page numbering;
* L = 512 on the leader and interior pages, L < 512 on the last page;
* the allocation map (if the descriptor is readable) calls no in-use page
  free;
* every directory entry names an existing file's leader, and the
  descriptor's root pointer resolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..disk.geometry import NIL
from ..disk.image import DiskImage
from ..errors import FileFormatError
from ..words import bytes_to_words, words_to_bytes
from .descriptor import DESCRIPTOR_LEADER_ADDRESS, DiskDescriptor
from .directory import Directory
from .file import FULL_PAGE
from .leader import LeaderPage
from .names import (
    FileId,
    ORDINARY_SERIAL_FLAG,
    PAGE_NUMBER_BIAS,
    page_number_from_label,
)


@dataclass(frozen=True)
class Issue:
    """One invariant violation."""

    kind: str
    address: Optional[int]
    detail: str

    def __str__(self) -> str:
        where = f" @{self.address}" if self.address is not None else ""
        return f"[{self.kind}{where}] {self.detail}"


@dataclass
class CheckReport:
    """Everything ``check_image`` found."""

    issues: List[Issue] = field(default_factory=list)
    files: int = 0
    directories: int = 0
    free_pages: int = 0
    bad_pages: int = 0

    @property
    def clean(self) -> bool:
        return not self.issues

    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for issue in self.issues:
            out[issue.kind] = out.get(issue.kind, 0) + 1
        return out

    def note(self, kind: str, address: Optional[int], detail: str) -> None:
        self.issues.append(Issue(kind, address, detail))


def _parseable(label) -> bool:
    if not label.serial & ORDINARY_SERIAL_FLAG:
        return False
    if label.serial & 0xFFFF == 0:
        return False
    if not 1 <= label.version <= 0xFFFE:
        return False
    if label.page_number < PAGE_NUMBER_BIAS or label.page_number == 0xFFFF:
        return False
    if label.length > FULL_PAGE:
        return False
    return True


def check_image(image: DiskImage) -> CheckReport:
    """Inspect a pack; returns a :class:`CheckReport` (no writes, no time)."""
    report = CheckReport()
    files: Dict[Tuple[int, int], Dict[int, object]] = {}

    # -- pass 1: labels ----------------------------------------------------------
    for sector in image.sectors():
        label = sector.label
        address = sector.header.address
        if label.is_free:
            report.free_pages += 1
            continue
        if label.is_bad:
            report.bad_pages += 1
            continue
        if not _parseable(label):
            report.note("garbage-label", address, f"unparseable in-use label {label.pack()}")
            continue
        key = (label.serial, label.version)
        page_number = page_number_from_label(label)
        bucket = files.setdefault(key, {})
        if page_number in bucket:
            report.note(
                "duplicate-page", address,
                f"(serial {label.serial:#x}, page {page_number}) also at "
                f"{bucket[page_number].header.address}",
            )
            continue
        bucket[page_number] = sector

    report.files = len(files)

    # -- pass 2: per-file structure ------------------------------------------------
    for (serial, version), bucket in sorted(files.items()):
        tag = f"serial {serial:#x}v{version}"
        if FileId(serial).is_directory:
            report.directories += 1
        pages = sorted(bucket)
        if pages[0] != 0:
            report.note("headless", bucket[pages[0]].header.address,
                        f"{tag} starts at page {pages[0]}")
            continue
        if pages != list(range(len(pages))):
            missing = sorted(set(range(pages[-1] + 1)) - set(pages))
            report.note("gap", None, f"{tag} missing pages {missing}")
        last = pages[-1]
        for pn in pages:
            sector = bucket[pn]
            label = sector.label
            want_next = bucket[pn + 1].header.address if pn + 1 in bucket else NIL
            want_prev = bucket[pn - 1].header.address if pn - 1 in bucket and pn > 0 else NIL
            if label.next_link != want_next:
                report.note("bad-link", sector.header.address,
                            f"{tag} page {pn} NL={label.next_link}, want {want_next}")
            if label.prev_link != want_prev:
                report.note("bad-link", sector.header.address,
                            f"{tag} page {pn} PL={label.prev_link}, want {want_prev}")
            if pn < last and label.length != FULL_PAGE:
                report.note("bad-length", sector.header.address,
                            f"{tag} page {pn} is interior with L={label.length}")
            if pn == last and pn > 0 and label.length >= FULL_PAGE:
                report.note("ragged-end", sector.header.address,
                            f"{tag} last page has L={label.length}")
        if len(pages) < 2:
            report.note("bare-leader", bucket[0].header.address,
                        f"{tag} has a leader but no data page")
        try:
            LeaderPage.unpack(bucket[0].value)
        except FileFormatError as exc:
            report.note("bad-leader", bucket[0].header.address, f"{tag}: {exc}")

    # -- pass 3: the descriptor and map ----------------------------------------------
    descriptor = _read_descriptor(image, files, report)
    if descriptor is not None:
        allocator = descriptor.allocator()
        for sector in image.sectors():
            if sector.label.in_use and allocator.is_free(sector.header.address):
                report.note("map-lies-free", sector.header.address,
                            "allocation map calls an in-use page free")
        root_key = (descriptor.root_directory.fid.serial,
                    descriptor.root_directory.fid.version)
        if root_key not in files:
            report.note("dangling-root", None,
                        f"descriptor names nonexistent root {root_key[0]:#x}")

    # -- pass 4: directory entries ------------------------------------------------------
    for (serial, version), bucket in sorted(files.items()):
        if not FileId(serial).is_directory or 0 not in bucket:
            continue
        data = _file_bytes(bucket)
        try:
            entries = _parse_directory_bytes(data)
        except Exception as exc:  # noqa: BLE001 - any parse failure is one issue
            report.note("bad-directory", bucket[0].header.address,
                        f"directory serial {serial:#x}: {exc}")
            continue
        for name, fid, address in entries:
            key = (fid.serial, fid.version)
            if key not in files:
                report.note("dangling-entry", None,
                            f"{name!r} names nonexistent serial {fid.serial:#x}")
            elif files[key].get(0) is None or files[key][0].header.address != address:
                report.note("stale-entry-hint", address,
                            f"{name!r} hint {address} is not the leader address")
    return report


def _read_descriptor(image, files, report) -> Optional[DiskDescriptor]:
    key = next(
        (k for k, bucket in files.items()
         if 0 in bucket and bucket[0].header.address == DESCRIPTOR_LEADER_ADDRESS),
        None,
    )
    if key is None:
        report.note("no-descriptor", DESCRIPTOR_LEADER_ADDRESS,
                    "no file's leader sits at the standard address")
        return None
    try:
        return DiskDescriptor.unpack(image.shape, bytes_to_words(_file_bytes(files[key])))
    except FileFormatError as exc:
        report.note("bad-descriptor", DESCRIPTOR_LEADER_ADDRESS, str(exc))
        return None


def _file_bytes(bucket) -> bytes:
    out = bytearray()
    last = max(bucket)
    for pn in range(1, last + 1):
        if pn not in bucket:
            break
        sector = bucket[pn]
        out += words_to_bytes(sector.value, nbytes=min(sector.label.length, FULL_PAGE))
    return bytes(out)


def _parse_directory_bytes(data: bytes):
    words = bytes_to_words(data)
    out = []
    for _offset, _length, entry in Directory._parse(words):
        if entry is not None:
            out.append((entry.name, entry.fid, entry.full_name.address))
    return out
