"""The compacting scavenger (section 3.5).

"We have also written a more elaborate scavenger that does an in-place
permutation of the file pages on the disk so that the pages of each file
are in consecutive sectors.  This arrangement typically increases the speed
with which the files can be read sequentially by an order of magnitude over
what is possible if the pages have become scattered."

The compactor first runs the ordinary scavenger (guaranteeing a consistent
structure and yielding the page table), plans a packing that leaves pinned
pages (the boot page, the descriptor leader) where they are, then executes
the permutation with a one-sector memory buffer: chains are drained from
their free ends, cycles are rotated through the buffer.  Every moved page
is written with links already corrected for the final layout, so a second
scavenger pass afterwards only has to fix directory address hints and the
map -- and the disk is crash-consistent throughout, because a page's new
copy is written before its old label is freed (a crash in between leaves a
duplicate absolute name, which the ordinary scavenger resolves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..disk.drive import Action, DiskDrive, PartCommand
from ..disk.geometry import NIL
from ..disk.sector import Header, Label, VALUE_WORDS
from ..errors import FileFormatError
from ..words import ones_words
from .descriptor import BOOT_PAGE_ADDRESS, DESCRIPTOR_LEADER_ADDRESS
from .leader import LeaderPage
from .names import PAGE_NUMBER_BIAS
from .scavenger import Scavenger, ScavengeReport, SweptPage


@dataclass
class CompactionReport:
    """What the compactor did, plus the two scavenger reports."""

    pages_moved: int = 0
    files_compacted: int = 0
    files_already_consecutive: int = 0
    files_pinned: int = 0
    chains: int = 0
    cycles: int = 0
    elapsed_s: float = 0.0
    pre_scavenge: Optional[ScavengeReport] = None
    post_scavenge: Optional[ScavengeReport] = None


class Compactor:
    """In-place permutation of file pages into consecutive runs."""

    def __init__(self, drive: DiskDrive) -> None:
        self.drive = drive
        self.report = CompactionReport()

    # ------------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------------

    def compact(self) -> CompactionReport:
        obs = self.drive.clock.obs
        watch = self.drive.clock.stopwatch()
        with obs.span("fs.compact", "fs") as span:
            scavenger = Scavenger(self.drive)
            self.report.pre_scavenge = scavenger.scavenge()
            files = scavenger._files  # the verified page table
            bad = set(self.report.pre_scavenge.bad_sectors)

            with obs.span("compact.plan", "compact"):
                mapping, final_labels = self._plan(files, bad)
            if mapping:
                with obs.span("compact.execute", "compact"):
                    self._execute(mapping, final_labels)
            self._set_consecutive_flags(files, mapping)
            # A second pass recomputes the map, descriptor, and directory hints
            # from the new layout.
            self.report.post_scavenge = Scavenger(self.drive).scavenge()
            span.annotate(pages_moved=self.report.pages_moved,
                          chains=self.report.chains, cycles=self.report.cycles)
        obs.counter("fs.compact.runs").inc()
        self.report.elapsed_s = watch.elapsed_s
        return self.report

    # ------------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------------

    def _plan(
        self,
        files: Dict[Tuple[int, int], Dict[int, SweptPage]],
        bad: Set[int],
    ) -> Tuple[Dict[int, int], Dict[int, Label]]:
        """Choose target addresses: each file's pages packed consecutively.

        Returns (old address -> new address for every moved page,
        new address -> final label for every page, moved or not).
        """
        shape = self.drive.shape
        forbidden = set(bad)
        forbidden.add(BOOT_PAGE_ADDRESS)

        pinned_keys = set()
        for key, bucket in files.items():
            addresses = {p.address for p in bucket.values()}
            if BOOT_PAGE_ADDRESS in addresses or DESCRIPTOR_LEADER_ADDRESS in addresses:
                pinned_keys.add(key)
                forbidden.update(addresses)
        self.report.files_pinned = len(pinned_keys)

        # Pack files in order of current leader address, so an
        # already-compact disk stays (mostly) in place.
        order = sorted(
            (key for key in files if key not in pinned_keys),
            key=lambda key: files[key][0].address,
        )

        total = shape.total_sectors()
        targets: Dict[Tuple[int, int], int] = {}
        cursor = 0
        for key in order:
            size = len(files[key])
            start = self._find_run(cursor, size, total, forbidden)
            if start is None:
                # Could not pack this file; leave it where it is.
                forbidden.update(p.address for p in files[key].values())
                continue
            targets[key] = start
            for address in range(start, start + size):
                forbidden.add(address)
            cursor = start + size

        mapping: Dict[int, int] = {}
        final_labels: Dict[int, Label] = {}
        for key, bucket in files.items():
            size = len(bucket)
            start = targets.get(key)
            new_addresses = {}
            for pn in range(size):
                old = bucket[pn].address
                new = start + pn if start is not None else old
                new_addresses[pn] = new
                if new != old:
                    mapping[old] = new
            moved_any = any(new_addresses[pn] != bucket[pn].address for pn in range(size))
            if key not in pinned_keys:
                if moved_any:
                    self.report.files_compacted += 1
                else:
                    self.report.files_already_consecutive += 1
            for pn in range(size):
                page = bucket[pn]
                final_labels[new_addresses[pn]] = Label(
                    serial=page.serial,
                    version=page.version,
                    page_number=pn + PAGE_NUMBER_BIAS,
                    length=page.length,
                    next_link=new_addresses[pn + 1] if pn + 1 < size else NIL,
                    prev_link=new_addresses[pn - 1] if pn > 0 else NIL,
                )
        self.report.pages_moved = len(mapping)
        return mapping, final_labels

    @staticmethod
    def _find_run(cursor: int, size: int, total: int, forbidden: Set[int]) -> Optional[int]:
        """First gap of *size* consecutive allowed addresses at or after
        *cursor* (wrapping once to the start)."""
        for base in list(range(cursor, total - size + 1)) + list(range(0, cursor)):
            if base + size > total:
                continue
            if all(address not in forbidden for address in range(base, base + size)):
                return base
        return None

    # ------------------------------------------------------------------------
    # Execution: chains then cycles, one-sector buffer
    # ------------------------------------------------------------------------

    def _execute(self, mapping: Dict[int, int], final_labels: Dict[int, Label]) -> None:
        inverse = {new: old for old, new in mapping.items()}
        if len(inverse) != len(mapping):
            raise FileFormatError("compaction plan maps two pages to one sector")
        done: Set[int] = set()

        # Chains: a target that nothing vacates must be free right now; the
        # chain drains backwards from it.
        for old in list(mapping):
            if old in done or old in inverse:
                continue  # not a chain head (something moves into old)
            self._drain_chain(old, mapping, inverse, final_labels, done)

        # Cycles: whatever remains.
        for old in list(mapping):
            if old not in done:
                self._rotate_cycle(old, mapping, final_labels, done)

        # Free every vacated address that nothing was moved into.
        vacated = set(mapping.keys()) - set(mapping.values())
        for address in vacated:
            self._write_free(address)

    def _drain_chain(
        self,
        head: int,
        mapping: Dict[int, int],
        inverse: Dict[int, int],
        final_labels: Dict[int, Label],
        done: Set[int],
    ) -> None:
        """Move the chain starting (in content-flow order) at *head*:
        head -> m(head) -> m(m(head)) ... ending at a currently-free target.
        Performed back to front so every write lands on a free sector."""
        chain = [head]
        while chain[-1] in mapping:
            nxt = mapping[chain[-1]]
            if nxt == head:
                return  # actually a cycle; handled later
            chain.append(nxt)
        # chain[-1] is the free terminal target; move chain[-2] -> chain[-1],
        # then chain[-3] -> chain[-2], etc.
        for i in range(len(chain) - 2, -1, -1):
            self._move(chain[i], chain[i + 1], final_labels)
            done.add(chain[i])

    def _rotate_cycle(
        self,
        start: int,
        mapping: Dict[int, int],
        final_labels: Dict[int, Label],
        done: Set[int],
    ) -> None:
        """Rotate one cycle through the one-sector memory buffer."""
        cycle = [start]
        while mapping[cycle[-1]] != start:
            cycle.append(mapping[cycle[-1]])
        self.report.cycles += 1
        # Buffer the content of the last element (destined for `start`).
        last = cycle[-1]
        buffered = self.drive.read_sector(last)
        # Move the rest back to front: cycle[i] -> cycle[i+1].
        for i in range(len(cycle) - 2, -1, -1):
            self._move(cycle[i], cycle[i + 1], final_labels)
            done.add(cycle[i])
        # Finally place the buffered sector at `start`.
        self._write_sector(start, final_labels[start], buffered.value)
        done.add(last)

    def _move(self, old: int, new: int, final_labels: Dict[int, Label]) -> None:
        contents = self.drive.read_sector(old)
        value = contents.value
        label = final_labels[new]
        # A moved leader page gets its hints refreshed in flight.
        if label.page_number == PAGE_NUMBER_BIAS:  # page 0
            value = self._refresh_leader(value, final_labels, new)
        self._write_sector(new, label, value)

    def _refresh_leader(
        self, value: List[int], final_labels: Dict[int, Label], leader_address: int
    ) -> List[int]:
        try:
            leader = LeaderPage.unpack(value)
        except FileFormatError:
            return value
        # Follow the final chain from the leader to find the last page.
        address = leader_address
        page_number = 0
        while final_labels[address].next_link != NIL:
            address = final_labels[address].next_link
            page_number += 1
        return leader.with_last_page(page_number, address).with_consecutive(True).pack()

    def _write_sector(self, address: int, label: Label, value: List[int]) -> None:
        self.drive.write_header_label_value(
            address, Header(self.drive.image.pack_id, address), label, value
        )

    def _write_free(self, address: int) -> None:
        self.drive.transfer(
            address,
            label=PartCommand(Action.WRITE, Label.free().pack()),
            value=PartCommand(Action.WRITE, ones_words(VALUE_WORDS)),
        )

    # ------------------------------------------------------------------------
    # Consecutive flags for unmoved files
    # ------------------------------------------------------------------------

    def _set_consecutive_flags(self, files, mapping: Dict[int, int]) -> None:
        """Set maybe-consecutive on files whose leader page did not move
        (moved leaders were refreshed in flight by :meth:`_refresh_leader`)."""
        for key, bucket in files.items():
            if bucket[0].address in mapping:
                continue  # leader moved; handled by _refresh_leader
            addresses = [
                mapping.get(bucket[pn].address, bucket[pn].address) for pn in sorted(bucket)
            ]
            consecutive = all(
                addresses[i + 1] == addresses[i] + 1 for i in range(len(addresses) - 1)
            )
            try:
                contents = self.drive.read_sector(addresses[0])
                leader = LeaderPage.unpack(contents.value)
            except (FileFormatError, ValueError):
                continue
            refreshed = leader.with_last_page(len(addresses) - 1, addresses[-1]).with_consecutive(
                consecutive
            )
            if refreshed != leader:
                self.drive.transfer(
                    addresses[0], value=PartCommand(Action.WRITE, refreshed.pack())
                )


def compact(drive: DiskDrive) -> CompactionReport:
    """Convenience wrapper: run the compacting scavenger on *drive*."""
    return Compactor(drive).compact()
