"""A user-written journaled directory (the extension section 3.5 invites).

"This could be accomplished by writing a journal of all changes to
directories and taking an occasional snapshot of all the directories.  By
applying the changes in the journal to the snapshot we would get back the
current state.  This is of course a standard technique ...  For the reasons
already mentioned, we do not consider our directories important enough to
warrant such attentions.  If the user disagrees, he is free to modify the
system-provided procedures for managing directories, or to write his own."

This module is that disagreeing user.  ``JournaledDirectory`` wraps an
ordinary :class:`~repro.fs.directory.Directory` and records every mutation
in a journal file *before* applying it; ``snapshot()`` copies the directory
contents to a snapshot file and truncates the journal.  After ANY
destruction of the directory file, :func:`recover_directory` rebuilds it
from snapshot + journal -- recovering exactly the information the paper
says plain scavenging loses ("the information that a certain set of files
was referenced from that directory by a certain set of names").

Everything here uses only public package interfaces: it is user code, which
is the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import DirectoryError, FileNotFound
from ..words import (
    bytes_to_words,
    from_double_word,
    string_to_words,
    to_double_word,
    words_to_bytes,
    words_to_string,
)
from .directory import DirEntry, Directory
from .file import AltoFile
from .names import FileId, FullName

#: Journal record opcodes.
OP_ADD = 1
OP_REMOVE = 2

_RECORD_FIXED_WORDS = 6  # header + op + serial(2) + version + address


@dataclass(frozen=True)
class JournalRecord:
    """One logged mutation."""

    op: int
    name: str
    full_name: FullName

    def pack(self) -> List[int]:
        name_words = string_to_words(self.name)
        high, low = to_double_word(self.full_name.fid.serial)
        length = _RECORD_FIXED_WORDS + len(name_words)
        return [
            length,
            self.op,
            high,
            low,
            self.full_name.fid.version,
            self.full_name.address,
        ] + name_words


def _parse_records(words: List[int]) -> List[JournalRecord]:
    records = []
    offset = 0
    while offset < len(words):
        length = words[offset]
        if length < _RECORD_FIXED_WORDS + 1 or offset + length > len(words):
            # A torn journal tail: everything before it is still good.
            break
        op = words[offset + 1]
        serial = from_double_word(words[offset + 2], words[offset + 3])
        version = words[offset + 4]
        address = words[offset + 5]
        try:
            name = words_to_string(words[offset + 6 : offset + length])
            full_name = FullName(FileId(serial, version), 0, address)
            record = JournalRecord(op, name, full_name)
        except ValueError:
            break  # torn record
        if op not in (OP_ADD, OP_REMOVE):
            break
        records.append(record)
        offset += length
    return records


class JournaledDirectory:
    """A directory whose mutations are write-ahead journaled."""

    def __init__(self, directory: Directory, journal_file: AltoFile, snapshot_file: AltoFile):
        self.directory = directory
        self.journal_file = journal_file
        self.snapshot_file = snapshot_file

    # ------------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------------

    @classmethod
    def wrap(cls, fs, directory: Directory) -> "JournaledDirectory":
        """Attach (or re-attach) journaling to *directory*."""
        journal = _ensure_file(fs, f"{directory.name}.journal")
        snapshot = _ensure_file(fs, f"{directory.name}.snapshot")
        wrapped = cls(directory, journal, snapshot)
        if snapshot.byte_length == 0:
            wrapped.snapshot()
        return wrapped

    # ------------------------------------------------------------------------
    # Mutations (journal first, then apply)
    # ------------------------------------------------------------------------

    def add(self, name: str, full_name: FullName, replace: bool = False) -> None:
        self._log(JournalRecord(OP_ADD, name, full_name))
        self.directory.add(name, full_name, replace=replace)

    def remove(self, name: str) -> DirEntry:
        entry = self.directory.require(name)
        self._log(JournalRecord(OP_REMOVE, name, entry.full_name))
        return self.directory.remove(name)

    def _log(self, record: JournalRecord) -> None:
        existing = self.journal_file.read_data()
        self.journal_file.write_data(existing + words_to_bytes(record.pack()))

    # -- reads pass straight through ------------------------------------------------

    def lookup(self, name: str):
        return self.directory.lookup(name)

    def entries(self) -> List[DirEntry]:
        return self.directory.entries()

    def names(self) -> List[str]:
        return self.directory.names()

    # ------------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------------

    def snapshot(self) -> int:
        """Copy the directory state to the snapshot file and truncate the
        journal; returns the number of entries captured."""
        entries = self.directory.entries()
        words: List[int] = []
        for entry in entries:
            words.extend(JournalRecord(OP_ADD, entry.name, entry.full_name).pack())
        self.snapshot_file.write_data(words_to_bytes(words))
        self.journal_file.write_data(b"")
        return len(entries)

    def journal_records(self) -> List[JournalRecord]:
        return _parse_records(bytes_to_words(self.journal_file.read_data()))

    def replay_state(self) -> List[Tuple[str, FullName]]:
        """Snapshot + journal, replayed: the directory's logical content."""
        state: dict = {}
        snapshot_words = bytes_to_words(self.snapshot_file.read_data())
        for record in _parse_records(snapshot_words):
            state[record.name.lower()] = (record.name, record.full_name)
        for record in self.journal_records():
            if record.op == OP_ADD:
                state[record.name.lower()] = (record.name, record.full_name)
            else:
                state.pop(record.name.lower(), None)
        return list(state.values())


def _ensure_file(fs, name: str) -> AltoFile:
    try:
        return fs.open_file(name)
    except FileNotFound:
        return fs.create_file(name)


def recover_directory(fs, directory_name: str) -> Directory:
    """Rebuild *directory_name* from its snapshot + journal.

    Call after the directory file itself was destroyed (and a scavenge has
    run, so the snapshot/journal files are reachable again).  Entries whose
    target files no longer exist are dropped; address hints are refreshed
    lazily by the normal hint machinery afterwards.
    """
    journal = fs.open_file(f"{directory_name}.journal")
    snapshot = fs.open_file(f"{directory_name}.snapshot")
    shadow = JournaledDirectory.__new__(JournaledDirectory)
    shadow.journal_file = journal
    shadow.snapshot_file = snapshot
    shadow.directory = None
    state = JournaledDirectory.replay_state(shadow)

    try:
        rebuilt = fs.open_directory(directory_name)
    except FileNotFound:
        rebuilt = fs.create_directory(directory_name)
    for name, full_name in state:
        if rebuilt.lookup(name) is None:
            rebuilt.add(name, full_name)
    return rebuilt
