"""Crash-recovery invariant checking (sections 3.4-3.6, machine-checked).

The paper's central engineering claim is that label-checked pages plus the
Scavenger make the file system robust against "any single-page failure" and
most multi-page ones.  This module turns that claim into machine-checked
invariants: after an injected crash (see :class:`~repro.disk.faults.FaultPlan`),
:func:`check_recovery` runs the Scavenger, remounts, and asserts

* **structure** -- the recovered pack passes the read-only fsck
  (:func:`~repro.fs.fsck.check_image`) with no residue beyond the documented
  ``ragged-end`` case: no page doubly allocated, no gaps, no dangling or
  unreachable directory entries;
* **accounting** -- the rebuilt allocation map agrees with the labels: no
  in-use page called free, no free page leaked as busy;
* **reachability** -- every surviving file opens and reads through the
  ordinary mount path;
* **contents** -- every file untouched by the in-flight operation is
  byte-identical to its pre-crash state, and the in-flight file itself is in
  a *prefix-consistent* state: page-wise, a prefix of the new contents
  followed by a suffix of the old (or a page-boundary truncation of either).

:func:`crash_point_sweep` is the exhaustive engine on top: run a workload
once to count its part-writes, then replay it once per write with a clean
crash (or torn write) injected there, checking recovery after every crash.
``python -m repro crashtest`` and the ``crash_sweeper`` pytest fixture both
drive this function.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..disk.drive import DiskDrive
from ..disk.faults import FaultPlan
from ..disk.geometry import tiny_test_disk
from ..disk.image import DiskImage
from ..errors import PowerFailure, ReproError
from ..words import PAGE_DATA_BYTES, random_bytes
from .descriptor import BOOT_PAGE_ADDRESS, DESCRIPTOR_NAME
from .filesystem import FileSystem, ROOT_DIRECTORY_NAME
from .fsck import check_image
from .names import FileId
from .scavenger import ScavengeReport, Scavenger

#: fsck issue kinds tolerated after a recovery (see EXPERIMENTS.md): a file
#: truncated at a corruption gap keeps L=512 on its new last page, because L
#: is absolute and the scavenger will not invent data lengths.
TOLERATED_ISSUES = ("ragged-end",)

#: Names present on every formatted pack that the checker skips.
SYSTEM_NAMES = (ROOT_DIRECTORY_NAME, DESCRIPTOR_NAME)


# ----------------------------------------------------------------------------
# Expected state
# ----------------------------------------------------------------------------


@dataclass(frozen=True)
class Change:
    """What the workload did (or was doing) to one file at crash time."""

    before: Optional[bytes]  # None: the file did not exist pre-workload
    after: Optional[bytes]  # None: the workload deleted it
    renamed_to: Optional[str] = None


def snapshot_files(fs: FileSystem) -> Dict[str, bytes]:
    """Contents of every ordinary root-level file, by name."""
    out: Dict[str, bytes] = {}
    for name in fs.list_files():
        if name in SYSTEM_NAMES:
            continue
        entry = fs.root.require(name)
        if FileId(entry.fid.serial).is_directory:
            continue
        out[name] = fs.open_file(name).read_data()
    return out


# ----------------------------------------------------------------------------
# The per-crash invariant check
# ----------------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """Everything one post-crash recovery check found."""

    crash_point: int = -1
    crash_reason: str = ""
    scavenge: Optional[ScavengeReport] = None
    problems: List[str] = field(default_factory=list)
    files_verified: int = 0
    files_in_flight: int = 0
    fsck_issues: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def note(self, problem: str) -> None:
        self.problems.append(problem)

    def __str__(self) -> str:
        status = "ok" if self.ok else "; ".join(self.problems)
        return (
            f"crash@{self.crash_point}: {self.files_verified} verified, "
            f"{self.files_in_flight} in-flight -- {status}"
        )


def _pad_chunk(data: bytes, start: int, size: int) -> bytes:
    """*size* bytes of *data* from *start*, zero-padded past the end."""
    chunk = data[start : start + size]
    return chunk + b"\x00" * (size - len(chunk))


def prefix_consistent(found: bytes, old: Optional[bytes], new: Optional[bytes]) -> bool:
    """Is *found* a legitimate crash state between *old* and *new*?

    Page-wise (512-byte chunks): every chunk of *found* must match the
    corresponding chunk of *old* or of *new* (zero-padded at short tails,
    matching the padded page writes), or be all zeros (a grown-but-unfilled
    page).  Exact matches and page-boundary truncations are special cases.
    ``None`` means "did not exist" (old) / "was being deleted" (new).
    """
    old = old if old is not None else b""
    candidates = [old] if new is None else [old, new]
    if any(found == c for c in candidates):
        return True
    limit = max(len(c) for c in candidates)
    if len(found) > limit + PAGE_DATA_BYTES:
        return False
    for start in range(0, max(len(found), 1), PAGE_DATA_BYTES):
        chunk = found[start : start + PAGE_DATA_BYTES]
        options = [_pad_chunk(c, start, len(chunk)) for c in candidates]
        options.append(b"\x00" * len(chunk))
        if chunk not in options:
            return False
    return True


def check_recovery(
    image: DiskImage,
    before: Dict[str, bytes],
    changes: Optional[Dict[str, Change]] = None,
    crash_point: int = -1,
    crash_reason: str = "",
) -> RecoveryReport:
    """Scavenge a crashed pack and verify every recovery invariant.

    *before* maps file names to their pre-workload contents; *changes* maps
    the names the workload touched to what it did.  Returns a
    :class:`RecoveryReport`; ``report.ok`` is the overall verdict.
    """
    changes = changes or {}
    report = RecoveryReport(crash_point=crash_point, crash_reason=crash_reason)

    # -- recovery: one scavenge must make the pack mountable -------------------
    try:
        report.scavenge = Scavenger(DiskDrive(image)).scavenge()
        fs = FileSystem.mount(DiskDrive(image))
    except ReproError as exc:
        report.note(f"recovery failed: {type(exc).__name__}: {exc}")
        return report

    # -- structure: read-only fsck ------------------------------------------------
    fsck = check_image(image)
    residue = [issue for issue in fsck.issues if issue.kind not in TOLERATED_ISSUES]
    report.fsck_issues = len(residue)
    for issue in residue:
        report.note(f"fsck: {issue}")

    # -- accounting: the map must agree with the labels ---------------------------
    unreadable_labels = {addr for (addr, part) in image.checksum_bad if part == "label"}
    for sector in image.sectors():
        address = sector.header.address
        if (
            address == BOOT_PAGE_ADDRESS
            or address in image.bad_media
            or address in unreadable_labels
        ):
            continue
        if sector.label.is_free and not fs.allocator.is_free(address):
            report.note(f"page-leaked @{address}: free label, busy in map")
        elif sector.label.in_use and fs.allocator.is_free(address):
            report.note(f"map-lies-free @{address}: in-use label, free in map")

    # -- reachability + contents ---------------------------------------------------
    recovered = _read_all_files(fs, report)
    expected_names = set(before) | set(changes)
    for name in sorted(expected_names):
        change = changes.get(name)
        old = before.get(name)
        aliases = [name]
        if change is not None and change.renamed_to:
            aliases.append(change.renamed_to)
        found_name = _find_surviving(recovered, aliases)

        if change is None:
            # Untouched by the in-flight operation: must be byte-identical.
            if found_name is None:
                report.note(f"{name}: untouched file unreachable after recovery")
            elif recovered[found_name] != old:
                report.note(f"{name}: untouched file contents changed")
            else:
                report.files_verified += 1
            continue

        report.files_in_flight += 1
        if found_name is None:
            # Absent is legitimate only when it could have been absent: the
            # workload was deleting it, or creating it from nothing.
            if change.after is not None and old is not None:
                report.note(f"{name}: in-flight file lost entirely")
            continue
        if not prefix_consistent(recovered[found_name], old, change.after):
            report.note(
                f"{name}: contents are not a prefix-consistent crash state "
                f"({len(recovered[found_name])} bytes found)"
            )
    return report


def _read_all_files(fs: FileSystem, report: RecoveryReport) -> Dict[str, bytes]:
    """Open and read every root-level file through the ordinary mount path."""
    out: Dict[str, bytes] = {}
    for name in fs.list_files():
        if name in SYSTEM_NAMES:
            continue
        entry = fs.root.require(name)
        if FileId(entry.fid.serial).is_directory:
            continue
        try:
            out[name] = fs.open_file(name).read_data()
        except ReproError as exc:
            report.note(f"{name}: unreadable after recovery ({type(exc).__name__})")
    return out


def _find_surviving(recovered: Dict[str, bytes], aliases: Sequence[str]) -> Optional[str]:
    """A file may survive under its name, its new name, or a rescued
    ``name!N`` variant; pick the first present."""
    for alias in aliases:
        if alias in recovered:
            return alias
    for alias in aliases:
        for candidate in recovered:
            if candidate.startswith(alias + "!"):
                return candidate
    return None


# ----------------------------------------------------------------------------
# The exhaustive crash-point sweep
# ----------------------------------------------------------------------------


@dataclass
class SweepResult:
    """Outcome of a full crash-point sweep."""

    total_writes: int = 0
    points_tested: int = 0
    reports: List[RecoveryReport] = field(default_factory=list)

    @property
    def failures(self) -> List[RecoveryReport]:
        return [r for r in self.reports if not r.ok]

    @property
    def ok(self) -> bool:
        return self.points_tested > 0 and not self.failures

    def summary(self) -> str:
        verdict = "all recovered" if self.ok else f"{len(self.failures)} FAILED"
        return (
            f"{self.points_tested}/{self.total_writes} crash points swept: {verdict}"
        )


def crash_point_sweep(
    build: Callable[[], Tuple[DiskImage, FileSystem]],
    workload: Callable[[FileSystem], Dict[str, Change]],
    seed: int = 1979,
    points: Optional[Sequence[int]] = None,
    tear: bool = False,
    on_point: Optional[Callable[[RecoveryReport], None]] = None,
    make_drive: Optional[Callable[[DiskImage, FaultPlan], DiskDrive]] = None,
) -> SweepResult:
    """Crash the workload at every part-write and verify recovery each time.

    *build* creates a deterministic populated pack; *workload* mutates it
    and returns the :class:`Change` set it performed (what it *would* have
    done, had it completed).  The sweep first runs the workload uninjured to
    count part-writes, then replays it from an image snapshot once per
    crash point -- write N with a clean power failure (or, with ``tear``, a
    torn write) injected there -- and runs :func:`check_recovery` on the
    wreckage.  Deterministic given (*build*, *workload*, *seed*).

    *make_drive* builds the drive the workload runs on (default: a plain
    :class:`DiskDrive`).  Passing a :class:`~repro.disk.cache.CachedDrive`
    factory sweeps the same workload with write-back caching in play --
    crash points then fall inside flush drains too, and any buffered data
    alive at the crash is lost exactly as a real power failure would lose
    it.  Recovery always runs on a fresh uncached drive: the platter is all
    that survives.
    """
    if make_drive is None:
        make_drive = lambda img, plan: DiskDrive(img, fault_injector=plan)
    image, fs = build()
    baseline = image.snapshot()
    before = snapshot_files(fs)

    # Pass 1: count part-writes over the same mount-then-run path the
    # replays take (no faults scheduled), so crash points line up exactly.
    plan = FaultPlan(image, seed=seed)
    changes = workload(FileSystem.mount(make_drive(image, plan)))
    total = plan.writes_seen

    result = SweepResult(total_writes=total)
    chosen = list(points) if points is not None else list(range(1, total + 1))
    for n in chosen:
        if not 1 <= n <= total:
            raise ValueError(f"crash point {n} outside 1..{total}")
        image.restore(baseline)
        plan = FaultPlan(image, seed=seed)
        if tear:
            plan.tear_at_write(n)
        else:
            plan.crash_at_write(n)
        drive = make_drive(image, plan)
        reason = ""
        try:
            workload(FileSystem.mount(drive))
        except PowerFailure as exc:
            reason = str(exc)
        report = check_recovery(
            image, before, changes, crash_point=n, crash_reason=reason
        )
        if not reason:
            report.note(f"fault at write {n} never fired ({plan.writes_seen} writes seen)")
        result.reports.append(report)
        result.points_tested += 1
        if on_point is not None:
            on_point(report)
    return result


# ----------------------------------------------------------------------------
# The canonical workload (used by tests and ``python -m repro crashtest``)
# ----------------------------------------------------------------------------


def canonical_build(seed: int = 1979, cylinders: int = 20):
    """A deterministic populated pack: 8 files of varied sizes."""

    def build() -> Tuple[DiskImage, FileSystem]:
        image = DiskImage(tiny_test_disk(cylinders=cylinders))
        fs = FileSystem.format(DiskDrive(image))
        rng = random.Random(seed)
        for i in range(8):
            data = random_bytes(rng, rng.randrange(100, 1800))
            fs.create_file(f"f{i}.dat").write_data(data)
        fs.sync()
        return image, fs

    return build


def canonical_workload(seed: int = 1979):
    """Rewrite, extend, shrink, create, delete, and rename -- every kind of
    in-flight operation a crash can interrupt."""

    def workload(fs: FileSystem) -> Dict[str, Change]:
        rng = random.Random(seed + 1)
        grown = random_bytes(rng, 2300)
        shrunk = random_bytes(rng, 150)
        created = random_bytes(rng, 900)
        old = {name: fs.open_file(name).read_data() for name in
               ("f0.dat", "f1.dat", "f2.dat", "f3.dat", "f4.dat")}
        changes = {
            "f0.dat": Change(before=old["f0.dat"], after=grown),
            "f1.dat": Change(before=old["f1.dat"], after=shrunk),
            "f2.dat": Change(before=old["f2.dat"], after=None),
            "new.dat": Change(before=None, after=created),
            "f3.dat": Change(before=old["f3.dat"], after=old["f3.dat"],
                             renamed_to="f3-renamed.dat"),
            "f4.dat": Change(before=old["f4.dat"], after=old["f4.dat"][:512] + shrunk),
        }
        fs.open_file("f0.dat").write_data(grown)
        fs.open_file("f1.dat").write_data(shrunk)
        fs.delete_file("f2.dat")
        fs.create_file("new.dat").write_data(created)
        fs.rename_file("f3.dat", "f3-renamed.dat")
        fs.open_file("f4.dat").write_data(old["f4.dat"][:512] + shrunk)
        fs.sync()
        return changes

    return workload
