"""16-bit word arithmetic and packing helpers.

The Alto is a 16-bit word machine; every on-disk and in-memory structure in
this reproduction is ultimately a sequence of 16-bit words, exactly as in the
paper ("each object can be represented by a 16-bit machine word", section 2).
This module centralizes the word discipline: masking, double-word packing,
byte packing (two bytes per word, big-endian within the word as on the Alto),
and BCPL-style string coding.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

WORD_BITS = 16
WORD_MASK = 0xFFFF
WORD_MODULUS = 0x10000
BYTES_PER_WORD = 2
MAX_WORD = WORD_MASK

#: Number of data words in a disk page (section 3.1: "a value -- 256 data
#: words") and the corresponding byte count ("pages ... have L=512").
PAGE_DATA_WORDS = 256
PAGE_DATA_BYTES = PAGE_DATA_WORDS * BYTES_PER_WORD


def word(value: int) -> int:
    """Truncate *value* to an unsigned 16-bit word (modular arithmetic)."""
    return value & WORD_MASK


def is_word(value: object) -> bool:
    """Return True when *value* is an int in the 16-bit unsigned range."""
    return isinstance(value, int) and 0 <= value <= WORD_MASK


def check_word(value: int, what: str = "value") -> int:
    """Validate that *value* fits in a word; return it unchanged.

    Raises ValueError otherwise.  Used at package boundaries so that errors
    surface where they are introduced rather than as corrupt disk data.
    """
    if not isinstance(value, int):
        raise ValueError(f"{what} must be an int, got {type(value).__name__}")
    if not 0 <= value <= WORD_MASK:
        raise ValueError(f"{what} must fit in 16 bits, got {value}")
    return value


def to_double_word(value: int) -> tuple:
    """Split a 32-bit value into (high word, low word).

    File serial numbers are "two words" (section 3.1); this is the packing
    used for them and for any other 32-bit on-disk quantity.
    """
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"double-word value out of range: {value}")
    return (value >> WORD_BITS) & WORD_MASK, value & WORD_MASK


def from_double_word(high: int, low: int) -> int:
    """Combine (high word, low word) into a 32-bit value."""
    return (check_word(high, "high") << WORD_BITS) | check_word(low, "low")


def bytes_to_words(data: bytes, pad: int = 0) -> List[int]:
    """Pack bytes into words, two per word, high byte first.

    An odd trailing byte is padded with *pad* (default 0) in the low byte,
    matching the Alto convention that the byte count -- not the word count --
    records the true length.
    """
    words = []
    for i in range(0, len(data) - 1, 2):
        words.append((data[i] << 8) | data[i + 1])
    if len(data) % 2:
        words.append((data[-1] << 8) | (pad & 0xFF))
    return words


def words_to_bytes(words: Sequence[int], nbytes: int = -1) -> bytes:
    """Unpack words into bytes, high byte first.

    When *nbytes* is given, the result is truncated to that many bytes (used
    to honour a page's byte length L, which may be odd).
    """
    out = bytearray()
    for w in words:
        out.append((w >> 8) & 0xFF)
        out.append(w & 0xFF)
    if nbytes >= 0:
        if nbytes > len(out):
            raise ValueError(f"asked for {nbytes} bytes from {len(out)} available")
        del out[nbytes:]
    return bytes(out)


def string_to_words(text: str, max_bytes: int = 255) -> List[int]:
    """Encode a string as a BCPL string: length byte, then character bytes.

    BCPL strings carry their length in the first byte, so they are limited to
    255 characters.  Leader names and directory entry names use this coding.
    """
    data = text.encode("ascii")
    if len(data) > max_bytes:
        raise ValueError(f"string too long for BCPL coding: {len(data)} > {max_bytes}")
    return bytes_to_words(bytes([len(data)]) + data)


def words_to_string(words: Sequence[int]) -> str:
    """Decode a BCPL string (length byte + characters) from words."""
    data = words_to_bytes(words)
    if not data:
        return ""
    length = data[0]
    if length > len(data) - 1:
        raise ValueError(f"corrupt BCPL string: length byte {length}, only {len(data) - 1} bytes follow")
    return data[1 : 1 + length].decode("ascii")


def string_word_count(text: str) -> int:
    """Number of words the BCPL coding of *text* occupies."""
    return (1 + len(text.encode("ascii")) + 1) // 2


def zero_words(count: int) -> List[int]:
    """A fresh list of *count* zero words."""
    return [0] * count


def ones_words(count: int) -> List[int]:
    """A fresh list of *count* all-ones words.

    Freeing a page writes "ones ... into label and value" (section 3.3); this
    is the pattern used.
    """
    return [WORD_MASK] * count


def checksum(words: Iterable[int]) -> int:
    """One's-complement-style 16-bit checksum over a word sequence.

    Used by the world-swap state files to detect torn writes; the Alto disk
    hardware kept a checksum per record, which we fold into the same role.
    """
    total = 0
    for w in words:
        total = (total + w) & WORD_MASK
    return total ^ WORD_MASK
