"""16-bit word arithmetic and packing helpers.

The Alto is a 16-bit word machine; every on-disk and in-memory structure in
this reproduction is ultimately a sequence of 16-bit words, exactly as in the
paper ("each object can be represented by a 16-bit machine word", section 2).
This module centralizes the word discipline: masking, double-word packing,
byte packing (two bytes per word, big-endian within the word as on the Alto),
and BCPL-style string coding.

The packing and checksum hot loops run as *bulk operations*
(``array('H')``/``int.from_bytes``-class primitives, optionally numpy via
:mod:`repro.fastpath` for large buffers).  The original word-at-a-time
forms survive in :mod:`repro.reference`, and ``tests/equivalence/``
asserts fast == reference on arbitrary inputs; see ARCHITECTURE.md,
"Fast paths and the differential harness".
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterable, List, Sequence

from . import fastpath

#: Host byte order: the wire/disk order is big-endian within each word, so
#: a little-endian host byteswaps the C array in one C call.
_LITTLE_ENDIAN = sys.byteorder == "little"

#: Below this many words/bytes the ``array`` path wins; above it numpy
#: (when available) is worth its per-call overhead.  The value is not
#: semantically meaningful -- both branches are exact and equivalence-
#: tested -- it only picks the faster of two identical answers.
_NUMPY_MIN_ITEMS = 2048

WORD_BITS = 16
WORD_MASK = 0xFFFF
WORD_MODULUS = 0x10000
BYTES_PER_WORD = 2
MAX_WORD = WORD_MASK

#: Number of data words in a disk page (section 3.1: "a value -- 256 data
#: words") and the corresponding byte count ("pages ... have L=512").
PAGE_DATA_WORDS = 256
PAGE_DATA_BYTES = PAGE_DATA_WORDS * BYTES_PER_WORD


def word(value: int) -> int:
    """Truncate *value* to an unsigned 16-bit word (modular arithmetic)."""
    return value & WORD_MASK


def is_word(value: object) -> bool:
    """Return True when *value* is an int in the 16-bit unsigned range."""
    return isinstance(value, int) and 0 <= value <= WORD_MASK


def check_word(value: int, what: str = "value") -> int:
    """Validate that *value* fits in a word; return it unchanged.

    Raises ValueError otherwise.  Used at package boundaries so that errors
    surface where they are introduced rather than as corrupt disk data.
    """
    if not isinstance(value, int):
        raise ValueError(f"{what} must be an int, got {type(value).__name__}")
    if not 0 <= value <= WORD_MASK:
        raise ValueError(f"{what} must fit in 16 bits, got {value}")
    return value


def to_double_word(value: int) -> tuple:
    """Split a 32-bit value into (high word, low word).

    File serial numbers are "two words" (section 3.1); this is the packing
    used for them and for any other 32-bit on-disk quantity.
    """
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"double-word value out of range: {value}")
    return (value >> WORD_BITS) & WORD_MASK, value & WORD_MASK


def from_double_word(high: int, low: int) -> int:
    """Combine (high word, low word) into a 32-bit value."""
    if type(high) is int and type(low) is int and 0 <= high <= WORD_MASK and 0 <= low <= WORD_MASK:
        return (high << WORD_BITS) | low
    return (check_word(high, "high") << WORD_BITS) | check_word(low, "low")


def bytes_to_words(data: bytes, pad: int = 0) -> List[int]:
    """Pack bytes into words, two per word, high byte first.

    An odd trailing byte is padded with *pad* (default 0) in the low byte,
    matching the Alto convention that the byte count -- not the word count --
    records the true length.

    Bulk implementation; reference twin:
    :func:`repro.reference.bytes_to_words_reference`.
    """
    n = len(data)
    even = n & ~1
    try:
        if n >= _NUMPY_MIN_ITEMS:
            np = fastpath.numpy()
            if np is not None:
                words = np.frombuffer(data, dtype=">u2", count=even >> 1).tolist()
                if n & 1:
                    words.append((data[-1] << 8) | (pad & 0xFF))
                return words
        packed = array("H")
        packed.frombytes(data if not n & 1 else memoryview(data)[:even])
        if _LITTLE_ENDIAN:
            packed.byteswap()
        words = packed.tolist()
        if n & 1:
            words.append((data[-1] << 8) | (pad & 0xFF))
        return words
    except (TypeError, BufferError):
        # Exotic input (a plain int sequence, an unbuffered object):
        # degrade to the byte-at-a-time reference loop, which accepts
        # anything indexable.
        from .reference import bytes_to_words_reference

        return bytes_to_words_reference(data, pad)


def words_to_bytes(words: Sequence[int], nbytes: int = -1) -> bytes:
    """Unpack words into bytes, high byte first.

    When *nbytes* is given, the result is truncated to that many bytes (used
    to honour a page's byte length L, which may be odd).  ``nbytes`` is
    validated up front: it must be ``-1`` (no truncation) or at most the
    ``2 * len(words)`` bytes actually available.

    Bulk implementation; reference twin:
    :func:`repro.reference.words_to_bytes_reference`.
    """
    if nbytes != -1 and nbytes < 0:
        raise ValueError(f"nbytes must be -1 (no truncation) or >= 0, got {nbytes}")
    if nbytes > 2 * len(words):
        raise ValueError(f"asked for {nbytes} bytes from {2 * len(words)} available")
    try:
        if len(words) >= _NUMPY_MIN_ITEMS:
            np = fastpath.numpy()
            if np is not None:
                out = np.asarray(words, dtype=">u2").tobytes()
                return out if nbytes == -1 else out[:nbytes]
        packed = array("H", words)
        if _LITTLE_ENDIAN:
            packed.byteswap()
        out = packed.tobytes()
        return out if nbytes == -1 else out[:nbytes]
    except (TypeError, OverflowError):
        # Out-of-range or non-int words: the reference loop reproduces the
        # historical masking semantics ((w >> 8) & 0xFF, w & 0xFF) exactly.
        from .reference import words_to_bytes_reference

        return words_to_bytes_reference(words, nbytes)


def string_to_words(text: str, max_bytes: int = 255) -> List[int]:
    """Encode a string as a BCPL string: length byte, then character bytes.

    BCPL strings carry their length in the first byte, so they are limited to
    255 characters.  Leader names and directory entry names use this coding.
    """
    data = text.encode("ascii")
    if len(data) > max_bytes:
        raise ValueError(f"string too long for BCPL coding: {len(data)} > {max_bytes}")
    return bytes_to_words(bytes([len(data)]) + data)


def words_to_string(words: Sequence[int]) -> str:
    """Decode a BCPL string (length byte + characters) from words."""
    data = words_to_bytes(words)
    if not data:
        return ""
    length = data[0]
    if length > len(data) - 1:
        raise ValueError(f"corrupt BCPL string: length byte {length}, only {len(data) - 1} bytes follow")
    return data[1 : 1 + length].decode("ascii")


def string_word_count(text: str) -> int:
    """Number of words the BCPL coding of *text* occupies."""
    return (1 + len(text.encode("ascii")) + 1) // 2


def zero_words(count: int) -> List[int]:
    """A fresh list of *count* zero words."""
    return [0] * count


def ones_words(count: int) -> List[int]:
    """A fresh list of *count* all-ones words.

    Freeing a page writes "ones ... into label and value" (section 3.3); this
    is the pattern used.
    """
    return [WORD_MASK] * count


def random_bytes(rng, count: int) -> bytes:
    """*count* bytes drawn exactly as ``bytes(rng.randrange(256) for ...)``.

    The benchmark and workload generators share one :class:`random.Random`
    between content bytes and structural draws (file sizes, fault picks),
    so the content generator must consume the underlying bit stream
    draw-for-draw identically or every later decision shifts.

    ``randrange(256)`` is ``getrandbits(9)`` with rejection of values >=
    256 -- i.e. one 32-bit Mersenne Twister output per draw, accepted when
    its top bit is clear, yielding bits 23..30.  ``getrandbits(32 * n)``
    consumes exactly *n* such outputs (least significant first), so a
    block of ``need`` words can be drawn in one call and scanned: every
    block yields at most ``need`` bytes, which the sequential process
    would also have consumed the whole block to produce.  Same values,
    same stream position, no per-byte Python call.

    Reference twin: :func:`repro.reference.random_bytes_reference`.
    """
    if count < 128:
        getrandbits = rng.getrandbits
        out = bytearray(count)
        for i in range(count):
            r = getrandbits(9)
            while r > 255:
                r = getrandbits(9)
            out[i] = r
        return bytes(out)
    np = fastpath.numpy()
    out = bytearray()
    need = count
    while need > 0:
        block = rng.getrandbits(32 * need).to_bytes(4 * need, "little")
        if np is not None:
            arr = np.frombuffer(block, dtype="<u4")
            accepted = ((arr >> 23) & 0xFF).astype(np.uint8)[(arr >> 31) == 0]
            out += accepted.tobytes()
            need = count - len(out)
        else:
            # Word i is block[4i:4i+4] little-endian: accept when the top
            # bit (byte 3, bit 7) is clear; the value is bits 23..30.
            append = out.append
            for i in range(3, len(block), 4):
                b3 = block[i]
                if b3 < 128:
                    append(((b3 & 0x7F) << 1) | (block[i - 1] >> 7))
            need = count - len(out)
    return bytes(out)


def checksum(words: Iterable[int]) -> int:
    """One's-complement-style 16-bit checksum over a word sequence.

    Used by the world-swap state files to detect torn writes; the Alto disk
    hardware kept a checksum per record, which we fold into the same role.

    Because each step only adds then masks, the running mask commutes with
    the sum: ``(((a + b) & M) + c) & M == (a + b + c) & M``.  The bulk form
    therefore sums once in C and masks at the end -- bit-identical to the
    word-at-a-time reference (:func:`repro.reference.checksum_reference`),
    which the equivalence suite asserts on arbitrary word sequences.
    """
    return (sum(words) & WORD_MASK) ^ WORD_MASK
