"""Simulated time base.

Every device in the reproduction charges its latencies against a shared
``SimClock`` instead of wall time, so the paper's quantitative claims
("scavenging ... takes about a minute", "requires about a second") become
deterministic model outputs.  Times are kept in microseconds internally to
avoid floating-point drift over long runs; the public accessors report
seconds and milliseconds.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .obs import Observability

MICROSECONDS_PER_SECOND = 1_000_000
MICROSECONDS_PER_MILLISECOND = 1_000


class SimClock:
    """A monotonically advancing simulated clock.

    The clock also keeps a running tally of named costs (seek time, rotation,
    transfer, ...) so that benchmarks can decompose where simulated time
    went -- the paper reasons about costs in exactly these units ("this
    scheme costs a disk revolution each time a page is allocated or freed").
    """

    def __init__(self) -> None:
        self._now_us = 0
        self._tallies: dict = {}
        self._watchers: List[Callable[[int], None]] = []
        # The observability layer hangs off the clock because every layer
        # that can spend simulated time already holds one (repro.obs).
        self.obs = Observability(self)

    # -- reading ------------------------------------------------------------

    @property
    def now_us(self) -> int:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_us / MICROSECONDS_PER_MILLISECOND

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_us / MICROSECONDS_PER_SECOND

    def tally_us(self, category: str) -> int:
        """Total microseconds charged so far under *category*."""
        return self._tallies.get(category, 0)

    def tallies(self) -> dict:
        """A copy of all category tallies, in microseconds."""
        return dict(self._tallies)

    # -- advancing ----------------------------------------------------------

    def advance_us(self, amount_us: int, category: str = "other") -> None:
        """Advance the clock by *amount_us* microseconds under *category*."""
        if amount_us < 0:
            raise ValueError(f"cannot advance clock by negative time: {amount_us}")
        self._now_us += amount_us
        try:
            self._tallies[category] += amount_us
        except KeyError:
            self._tallies[category] = amount_us
        if self._watchers:
            for watcher in self._watchers:
                watcher(self._now_us)

    def advance_ms(self, amount_ms: float, category: str = "other") -> None:
        """Advance the clock by *amount_ms* milliseconds under *category*."""
        self.advance_us(round(amount_ms * MICROSECONDS_PER_MILLISECOND), category)

    # -- measurement helpers -------------------------------------------------

    def stopwatch(self) -> "Stopwatch":
        """Return a stopwatch started at the current simulated time."""
        return Stopwatch(self)

    def add_watcher(self, fn: Callable[[int], None]) -> None:
        """Register *fn* to be called with the new time after every advance.

        Used by the fault injector to trigger power failures at a scheduled
        simulated instant.
        """
        self._watchers.append(fn)

    def remove_watcher(self, fn: Callable[[int], None]) -> None:
        """Unregister a watcher previously added with :meth:`add_watcher`."""
        self._watchers.remove(fn)


class Stopwatch:
    """Measures elapsed simulated time and per-category deltas."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start_us = clock.now_us
        self._start_tallies = clock.tallies()

    @property
    def elapsed_us(self) -> int:
        return self._clock.now_us - self._start_us

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_us / MICROSECONDS_PER_MILLISECOND

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_us / MICROSECONDS_PER_SECOND

    def category_delta_us(self, category: str) -> int:
        """Microseconds charged under *category* since this stopwatch started."""
        return self._clock.tally_us(category) - self._start_tallies.get(category, 0)

    def breakdown_ms(self) -> dict:
        """Per-category elapsed milliseconds since the stopwatch started."""
        out = {}
        for category, total in self._clock.tallies().items():
            delta = total - self._start_tallies.get(category, 0)
            if delta:
                out[category] = delta / MICROSECONDS_PER_MILLISECOND
        return out
