"""Run an interactive simulated Alto: ``python -m repro``.

Boots a freshly formatted pack (or ``--demo`` for a preloaded one) and
connects your terminal to the Executive.  Every command you type runs
against the simulated disk; ``quit`` exits.  This is a convenience shell
around :class:`repro.os.AltoOS` -- everything it does is available as
library calls.

``python -m repro crashtest`` instead runs the exhaustive crash-point
sweep: the canonical workload is crashed at every sector part-write (or
torn there, with ``--tear``), the Scavenger recovers the pack, and every
recovery invariant is checked (see :mod:`repro.fs.check`).  With
``--cached`` the workload runs on the write-back
:class:`~repro.disk.cache.CachedDrive`, so crashes also land inside flush
drains and lose whatever the cache had buffered.

``python -m repro failover`` runs the hot-standby failover drill (see
:mod:`repro.server.failover`): a replicated file server is killed at
every sector part-write mid-load, the standby is promoted by replaying
the journal tail, and every acked write is proven to survive while
retries stay at-most-once.

``python -m repro bench`` runs the benchmark regression harness (see
:mod:`repro.bench`): every ``benchmarks/bench_*.py`` measure, compared
against checked-in baselines, reported as ``BENCH_PR2.json``.

``python -m repro stats`` runs a scripted session and prints the unified
metrics snapshot (see :mod:`repro.obs`); ``--trace out.json`` on the REPL,
``crashtest``, ``serve``, and ``bench`` subcommands additionally records
simulated-time spans and writes them as Chrome ``trace_event`` JSON (open
in Perfetto).  See OBSERVABILITY.md.

``python -m repro serve`` runs the file-server demo (see
:mod:`repro.server`): N simulated workstations hammer one served
FileSystem over the packet network, concurrently and then sequentially,
and the throughput/latency comparison is printed.  See SERVER.md.
"""

from __future__ import annotations

import argparse
import sys

from .disk import DiskDrive, DiskImage, diablo31
from .os import AltoOS


def build_demo(os: AltoOS) -> None:
    """Preload files that make exploring pleasant."""
    os.fs.create_file("ReadMe.txt").write_data(
        b"Welcome to the simulated Alto.\n"
        b"Try: ls, type ReadMe.txt, write note.txt some text, free,\n"
        b"     copy ReadMe.txt Copy.txt, scavenge, compact, @Demo, quit\n"
    )
    os.fs.create_file("Demo.cm").write_data(
        b"write demo-output.txt the command file ran\n"
        b"type demo-output.txt\n"
        b"free\n"
    )


def _write_repl_trace(path: str, drive) -> None:
    from .obs import write_trace

    obs = drive.clock.obs
    trace = write_trace(path, [("alto", obs.tracer)], stats=obs.stats())
    spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    print(f"[trace written to {path}: {spans} spans]")


def stats_cmd(argv) -> int:
    """The ``stats`` subcommand: run a session, print the unified snapshot."""
    import json as _json

    from .disk import CachedDrive

    parser = argparse.ArgumentParser(
        prog="python -m repro stats",
        description="Run a scripted session and print the unified metrics snapshot",
    )
    parser.add_argument("--script", metavar="TEXT",
                        default="ls; write note.txt hello; type note.txt; free; scavenge",
                        help=";-separated Executive commands to run first")
    parser.add_argument("--cached", action="store_true",
                        help="run on the write-back CachedDrive")
    parser.add_argument("--serve", type=int, default=None, metavar="CLIENTS",
                        help="run a served workload with this many workstations "
                             "instead of the Executive session, so the snapshot "
                             "carries server.request_us and friends")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="with --serve: front an N-shard cluster (snapshot "
                             "is the cluster-wide merged registry view)")
    parser.add_argument("--json", action="store_true",
                        help="print the snapshot as JSON instead of a table")
    parser.add_argument("--trace", metavar="PATH",
                        help="also record spans and write a Chrome trace JSON")
    args = parser.parse_args(argv)
    if args.shards is not None and args.serve is None:
        parser.error("--shards requires --serve")

    drive = None
    if args.serve is not None:
        from .server.loadgen import LoadGenerator, build_cluster, build_system

        if args.shards is not None:
            system = build_cluster(args.serve, shards=args.shards)
        else:
            system = build_system(args.serve)
        if args.trace:
            system.clock.obs.enable_tracing()
        LoadGenerator(system).run()
        # ClusterSystem.stats() merges the router and every shard machine;
        # histogram bucket counts sum across machines, so the quantile
        # lines below are true cluster-wide percentiles.
        stats = system.stats()
    else:
        image = DiskImage(diablo31())
        drive = CachedDrive(image) if args.cached else DiskDrive(image)
        if args.trace:
            drive.clock.obs.enable_tracing()
        os = AltoOS.format(drive)
        build_demo(os)
        script = "\n".join(part.strip() for part in args.script.split(";")) + "\nquit\n"
        os.run_executive(script)
        stats = drive.clock.obs.stats()

    if args.json:
        print(_json.dumps(stats, indent=1, sort_keys=True))
    else:
        from .obs import QUANTILES, format_quantile, snapshot_histogram_names, \
            snapshot_quantiles

        table = {name: value for name, value in stats.items()
                 if ".bucket." not in name}
        width = max(len(name) for name in table)
        group = None
        for name in sorted(table):
            prefix = name.split(".", 1)[0]
            if prefix != group:
                if group is not None:
                    print()
                group = prefix
            value = table[name]
            shown = f"{value:.3f}" if isinstance(value, float) else str(value)
            print(f"  {name:<{width}}  {shown}")
        hist_names = snapshot_histogram_names(stats)
        if hist_names:
            print()
            print("  -- quantiles (log-bucket estimates, simulated us) --")
            for name in hist_names:
                quantiles = snapshot_quantiles(stats, name)
                cells = "  ".join(
                    f"{format_quantile(q)} {quantiles[format_quantile(q)]:.0f}"
                    for q in QUANTILES)
                print(f"  {name:<{width}}  {cells}")
    if args.trace and drive is not None:
        _write_repl_trace(args.trace, drive)
    elif args.trace:
        from .obs import write_trace

        trace = write_trace(args.trace, [("cluster", system.clock.obs.tracer)],
                            stats=stats, stitch=True,
                            strip_prefixes=("fileserver.",))
        spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
        print(f"[trace written to {args.trace}: {spans} spans]")
    return 0


def crashtest(argv) -> int:
    """The ``crashtest`` subcommand: sweep every crash point and verify."""
    from .fs.check import canonical_build, canonical_workload, crash_point_sweep

    parser = argparse.ArgumentParser(
        prog="python -m repro crashtest",
        description="Exhaustive crash-consistency sweep of the canonical workload",
    )
    parser.add_argument("--seed", type=int, default=1979,
                        help="seed for pack contents, workload, and torn-write garbage")
    parser.add_argument("--cylinders", type=int, default=20,
                        help="size of the test pack (tiny_test_disk cylinders)")
    parser.add_argument("--tear", action="store_true",
                        help="tear each write (prefix + garbage, checksum ruined) "
                             "instead of crashing cleanly before it")
    parser.add_argument("--cached", action="store_true",
                        help="run the workload on the write-back CachedDrive, so "
                             "crashes also hit flush drains and buffered data is lost")
    parser.add_argument("--rebalance", action="store_true",
                        help="sweep the shard-rebalancing pack-shipping protocol "
                             "instead: crash at every write across BOTH packs and "
                             "verify the moving names survive on exactly one shard")
    parser.add_argument("--points", metavar="N[,N...]",
                        help="sweep only these crash points (default: all)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every crash point as it is checked")
    parser.add_argument("--trace", metavar="PATH",
                        help="record spans from every clock in the sweep and "
                             "write one merged Chrome trace JSON")
    args = parser.parse_args(argv)

    points = None
    if args.points:
        try:
            points = [int(p) for p in args.points.split(",")]
        except ValueError:
            parser.error(f"--points expects integers, got {args.points!r}")

    def narrate(report):
        status = "ok" if report.ok else "FAIL"
        print(f"  {'tear' if args.tear else 'crash'}@{report.crash_point}: {status}"
              f"  ({report.crash_reason})")

    make_drive = None
    if args.cached:
        from .disk import CachedDrive

        make_drive = lambda image, plan: CachedDrive(image, fault_injector=plan)

    if args.trace:
        from .obs import runtime as obs_runtime

        obs_runtime.enable_trace_all()
    try:
        if args.rebalance:
            from .server.rebalance import rebalance_crash_sweep

            result = rebalance_crash_sweep(
                seed=args.seed,
                cylinders=args.cylinders,
                tear=args.tear,
                points=points,
                on_point=narrate if args.verbose else None,
                cached=args.cached,
            )
        else:
            result = crash_point_sweep(
                canonical_build(args.seed, cylinders=args.cylinders),
                canonical_workload(args.seed),
                seed=args.seed,
                points=points,
                tear=args.tear,
                on_point=narrate if args.verbose else None,
                make_drive=make_drive,
            )
    except ValueError as exc:  # e.g. a crash point outside 1..total
        parser.error(str(exc))
    if args.trace:
        import json as _json

        trace = obs_runtime.collect_trace()
        obs_runtime.disable_trace_all()
        with open(args.trace, "w", encoding="utf-8") as handle:
            _json.dump(trace, handle, indent=1, sort_keys=True)
            handle.write("\n")
        spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
        print(f"[trace written to {args.trace}: {spans} spans]")
    print(result.summary())
    for failure in result.failures:
        print(f"FAIL {failure}")
    if result.failures:
        print(f"replay one point with: python -m repro crashtest --seed {args.seed}"
              f"{' --tear' if args.tear else ''}{' --cached' if args.cached else ''}"
              f"{' --rebalance' if args.rebalance else ''}"
              f" --points <N> -v")
    return 0 if result.ok else 1


def serve_cmd(argv) -> int:
    """The ``serve`` subcommand: run the file-server load demo."""
    import json as _json

    from .server.loadgen import LoadGenerator, build_cluster, build_system

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="File-server demo: N workstations against one served pack",
    )
    parser.add_argument("--clients", type=int, default=8,
                        help="simulated workstations (default 8)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="serve from an N-shard cluster behind the hash "
                             "router instead of one server (each shard is its "
                             "own pack on its own simulated machine)")
    parser.add_argument("--seed", type=int, default=1979,
                        help="seed for every client's workload data")
    parser.add_argument("--file-bytes", type=int, default=2048,
                        help="approximate size of each client's file")
    parser.add_argument("--read-rounds", type=int, default=2,
                        help="times each client reads its file back")
    parser.add_argument("--uncached", action="store_true",
                        help="serve from the plain drive (no write-back cache)")
    parser.add_argument("--sequential-only", action="store_true",
                        help="skip the concurrent run")
    parser.add_argument("--concurrent-only", action="store_true",
                        help="skip the sequential baseline")
    parser.add_argument("--json", action="store_true",
                        help="print results as JSON instead of a table")
    parser.add_argument("--trace", metavar="PATH",
                        help="record request spans and write a Chrome trace JSON")
    args = parser.parse_args(argv)

    def run(mode: str):
        if args.shards is not None:
            system = build_cluster(args.clients, shards=args.shards,
                                   seed=args.seed, cached=not args.uncached)
        else:
            system = build_system(args.clients, seed=args.seed,
                                  cached=not args.uncached)
        if args.trace:
            system.clock.obs.enable_tracing()
            if args.shards is not None:
                for shard in system.shards:
                    shard.clock.obs.enable_tracing()
        generator = LoadGenerator(system, seed=args.seed,
                                  file_bytes=args.file_bytes,
                                  read_rounds=args.read_rounds)
        result = generator.run() if mode == "concurrent" else generator.run_sequential()
        return system, result

    results = []
    trace_system = None
    if not args.sequential_only:
        trace_system, concurrent = run("concurrent")
        results.append(concurrent)
    if not args.concurrent_only:
        _, sequential = run("sequential")
        results.append(sequential)

    if args.json:
        print(_json.dumps([r.to_json() for r in results], indent=1))
    else:
        for r in results:
            print(f"{r.mode}: {r.clients} clients, {r.requests} requests, "
                  f"{r.errors} errors")
            print(f"  simulated {r.elapsed_s:.3f}s   {r.requests_per_sec:.2f} req/s   "
                  f"p50 {r.p50_ms:.2f}ms   p99 {r.p99_ms:.2f}ms")
            print(f"  retries {r.retries}  busy-retries {r.busy_retries}  "
                  f"rejected {r.rejected}  flushes {r.flushes}")
        if args.shards is not None and trace_system is not None:
            shares = [int(s.stats().get("server.requests", 0))
                      for s in trace_system.shards]
            print(f"shard request shares: {shares} "
                  f"(map epoch {trace_system.router.shard_map.epoch})")
        if len(results) == 2 and results[0].elapsed_s > 0:
            speedup = results[1].elapsed_s / results[0].elapsed_s
            print(f"concurrent multiplexing speedup: x{speedup:.2f} "
                  f"(one batched flush per poll, "
                  f"{results[1].flushes} -> {results[0].flushes} flushes)")
    if args.trace and trace_system is not None:
        if args.shards is not None:
            from .obs import write_trace

            # One process lane per simulated machine -- router front (with
            # per-client tracks) plus every shard -- stitched into causal
            # per-request traces by trace_id flow events.  The router
            # addresses clients through fileserver.<client> proxy hosts;
            # stripping the prefix folds both views of a request into one
            # trace id.
            tracers = [("router", trace_system.clock.obs.tracer)]
            tracers += [(shard.host, shard.clock.obs.tracer)
                        for shard in trace_system.shards]
            trace = write_trace(args.trace, tracers,
                                stats=trace_system.stats(), stitch=True,
                                strip_prefixes=("fileserver.",))
            spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
            flows = sum(1 for e in trace["traceEvents"]
                        if e.get("ph") in ("s", "t", "f"))
            print(f"[trace written to {args.trace}: {spans} spans, "
                  f"{flows} flow steps]")
        else:
            _write_repl_trace(args.trace, trace_system.fs.drive)
    return 0


def failover_cmd(argv) -> int:
    """The ``failover`` subcommand: crash-point-swept zero-loss failover drill."""
    from .server.failover import failover_crash_sweep, failover_drill

    parser = argparse.ArgumentParser(
        prog="python -m repro failover",
        description="Hot-standby failover drill: kill the replicated primary at "
                    "every part-write, promote the standby by replaying the "
                    "journal tail, and prove no acked write was lost and "
                    "retries stay at-most-once",
    )
    parser.add_argument("--seed", type=int, default=1979,
                        help="seed for pack contents, workload, and seeded wear")
    parser.add_argument("--cylinders", type=int, default=20,
                        help="size of the test pack (tiny_test_disk cylinders)")
    parser.add_argument("--points", metavar="N[,N...]",
                        help="sweep only these crash points (default: all)")
    parser.add_argument("--no-maintain", action="store_true",
                        help="run without the continuous incremental scavenge "
                             "patrol on the primary")
    parser.add_argument("--drill-only", action="store_true",
                        help="run one clean (no-crash) drill and exit instead "
                             "of sweeping crash points")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every crash point as it is checked")
    args = parser.parse_args(argv)

    points = None
    if args.points:
        try:
            points = [int(p) for p in args.points.split(",")]
        except ValueError:
            parser.error(f"--points expects integers, got {args.points!r}")

    maintain = not args.no_maintain
    if args.drill_only:
        report = failover_drill(seed=args.seed, cylinders=args.cylinders,
                                maintain=maintain)
        print(report)
        for problem in report.problems:
            print(f"FAIL {problem}")
        return 0 if report.ok else 1

    def narrate(report):
        print(f"  {report}")

    try:
        result = failover_crash_sweep(
            seed=args.seed,
            cylinders=args.cylinders,
            points=points,
            maintain=maintain,
            on_point=narrate if args.verbose else None,
        )
    except (ValueError, RuntimeError) as exc:
        parser.error(str(exc))
    print(result.summary())
    for failure in result.failures:
        print(f"FAIL {failure}")
        for problem in failure.problems:
            print(f"     {problem}")
    if result.failures:
        print(f"replay one point with: python -m repro failover "
              f"--seed {args.seed} --points <N> -v")
    return 0 if result.ok else 1


def top_cmd(argv) -> int:
    """The ``top`` subcommand: live latency dashboard over a serve run."""
    from .obs.top import TopDashboard
    from .server.loadgen import LoadGenerator, build_cluster, build_system

    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Live text dashboard: request latency quantiles and "
                    "server counters, refreshed while a loadgen run is in "
                    "flight",
    )
    parser.add_argument("--clients", type=int, default=8,
                        help="simulated workstations (default 8)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="drive an N-shard cluster instead of one server")
    parser.add_argument("--seed", type=int, default=1979,
                        help="seed for every client's workload data")
    parser.add_argument("--read-rounds", type=int, default=2,
                        help="times each client reads its file back")
    parser.add_argument("--interval", type=int, default=25, metavar="REQS",
                        help="completed requests between refreshes (default 25)")
    parser.add_argument("--once", action="store_true",
                        help="non-interactive: render exactly one frame at the "
                             "end of the run (the CI smoke mode)")
    args = parser.parse_args(argv)

    if args.shards is not None:
        system = build_cluster(args.clients, shards=args.shards, seed=args.seed)
        title = f"repro top -- {args.shards}-shard cluster, {args.clients} clients"
    else:
        system = build_system(args.clients, seed=args.seed)
        title = f"repro top -- 1 server, {args.clients} clients"
    dashboard = TopDashboard(system.stats, interval=args.interval,
                             live=not args.once and sys.stdout.isatty(),
                             title=title)
    generator = LoadGenerator(system, seed=args.seed,
                              read_rounds=args.read_rounds)
    result = generator.run(progress=None if args.once else dashboard.tick)
    dashboard.refresh()
    print(f"run complete: {result.requests} requests in "
          f"{result.elapsed_s:.3f} simulated seconds "
          f"({result.requests_per_sec:.1f} req/s), "
          f"p99 {result.p99_hist_ms:.2f}ms")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "crashtest":
        return crashtest(argv[1:])
    if argv and argv[0] == "serve":
        return serve_cmd(argv[1:])
    if argv and argv[0] == "stats":
        return stats_cmd(argv[1:])
    if argv and argv[0] == "top":
        return top_cmd(argv[1:])
    if argv and argv[0] == "failover":
        return failover_cmd(argv[1:])
    if argv and argv[0] == "bench":
        from .bench import main as bench_main

        return bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Interactive Executive on a simulated Alto (SOSP 1979 reproduction)",
    )
    parser.add_argument("--demo", action="store_true", help="preload demo files")
    parser.add_argument(
        "--script", metavar="TEXT",
        help="run these ;-separated commands instead of reading stdin",
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help="record simulated-time spans and write a Chrome trace JSON on exit",
    )
    args = parser.parse_args(argv)

    image = DiskImage(diablo31())
    drive = DiskDrive(image)
    if args.trace:
        drive.clock.obs.enable_tracing()
    os = AltoOS.format(drive)
    if args.demo:
        build_demo(os)

    print(f"Alto OS reproduction -- {image.shape.name}, "
          f"{os.fs.free_pages()} free pages.  'quit' to exit.")

    if args.script is not None:
        script = "\n".join(part.strip() for part in args.script.split(";")) + "\nquit\n"
        before = len(os.display.text())
        output = os.run_executive(script)
        print(output)
        print(f"[simulated time: {drive.clock.now_s:.1f}s, "
              f"{drive.stats.commands} disk commands]")
        if args.trace:
            _write_repl_trace(args.trace, drive)
        return 0

    while True:
        try:
            line = input("> ")
        except (EOFError, KeyboardInterrupt):
            print()
            if args.trace:
                _write_repl_trace(args.trace, drive)
            return 0
        scrolled_before = os.display.scrolled
        snapshot = os.display.text()
        os.executive.execute(line)
        after = os.display.text()
        # Print only what the command added to the display.
        if after.startswith(snapshot) and os.display.scrolled == scrolled_before:
            sys.stdout.write(after[len(snapshot):])
        else:
            sys.stdout.write(after + "\n")
        sys.stdout.flush()
        if not line.strip().lower().startswith("quit") and line.strip().lower() != "quit":
            continue
        if args.trace:
            _write_repl_trace(args.trace, drive)
        return 0


if __name__ == "__main__":
    sys.exit(main())
