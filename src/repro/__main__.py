"""Run an interactive simulated Alto: ``python -m repro``.

Boots a freshly formatted pack (or ``--demo`` for a preloaded one) and
connects your terminal to the Executive.  Every command you type runs
against the simulated disk; ``quit`` exits.  This is a convenience shell
around :class:`repro.os.AltoOS` -- everything it does is available as
library calls.

``python -m repro crashtest`` instead runs the exhaustive crash-point
sweep: the canonical workload is crashed at every sector part-write (or
torn there, with ``--tear``), the Scavenger recovers the pack, and every
recovery invariant is checked (see :mod:`repro.fs.check`).  With
``--cached`` the workload runs on the write-back
:class:`~repro.disk.cache.CachedDrive`, so crashes also land inside flush
drains and lose whatever the cache had buffered.

``python -m repro bench`` runs the benchmark regression harness (see
:mod:`repro.bench`): every ``benchmarks/bench_*.py`` measure, compared
against checked-in baselines, reported as ``BENCH_PR2.json``.
"""

from __future__ import annotations

import argparse
import sys

from .disk import DiskDrive, DiskImage, diablo31
from .os import AltoOS


def build_demo(os: AltoOS) -> None:
    """Preload files that make exploring pleasant."""
    os.fs.create_file("ReadMe.txt").write_data(
        b"Welcome to the simulated Alto.\n"
        b"Try: ls, type ReadMe.txt, write note.txt some text, free,\n"
        b"     copy ReadMe.txt Copy.txt, scavenge, compact, @Demo, quit\n"
    )
    os.fs.create_file("Demo.cm").write_data(
        b"write demo-output.txt the command file ran\n"
        b"type demo-output.txt\n"
        b"free\n"
    )


def crashtest(argv) -> int:
    """The ``crashtest`` subcommand: sweep every crash point and verify."""
    from .fs.check import canonical_build, canonical_workload, crash_point_sweep

    parser = argparse.ArgumentParser(
        prog="python -m repro crashtest",
        description="Exhaustive crash-consistency sweep of the canonical workload",
    )
    parser.add_argument("--seed", type=int, default=1979,
                        help="seed for pack contents, workload, and torn-write garbage")
    parser.add_argument("--cylinders", type=int, default=20,
                        help="size of the test pack (tiny_test_disk cylinders)")
    parser.add_argument("--tear", action="store_true",
                        help="tear each write (prefix + garbage, checksum ruined) "
                             "instead of crashing cleanly before it")
    parser.add_argument("--cached", action="store_true",
                        help="run the workload on the write-back CachedDrive, so "
                             "crashes also hit flush drains and buffered data is lost")
    parser.add_argument("--points", metavar="N[,N...]",
                        help="sweep only these crash points (default: all)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every crash point as it is checked")
    args = parser.parse_args(argv)

    points = None
    if args.points:
        try:
            points = [int(p) for p in args.points.split(",")]
        except ValueError:
            parser.error(f"--points expects integers, got {args.points!r}")

    def narrate(report):
        status = "ok" if report.ok else "FAIL"
        print(f"  {'tear' if args.tear else 'crash'}@{report.crash_point}: {status}"
              f"  ({report.crash_reason})")

    make_drive = None
    if args.cached:
        from .disk import CachedDrive

        make_drive = lambda image, plan: CachedDrive(image, fault_injector=plan)

    try:
        result = crash_point_sweep(
            canonical_build(args.seed, cylinders=args.cylinders),
            canonical_workload(args.seed),
            seed=args.seed,
            points=points,
            tear=args.tear,
            on_point=narrate if args.verbose else None,
            make_drive=make_drive,
        )
    except ValueError as exc:  # e.g. a crash point outside 1..total
        parser.error(str(exc))
    print(result.summary())
    for failure in result.failures:
        print(f"FAIL {failure}")
    if result.failures:
        print(f"replay one point with: python -m repro crashtest --seed {args.seed}"
              f"{' --tear' if args.tear else ''}{' --cached' if args.cached else ''}"
              f" --points <N> -v")
    return 0 if result.ok else 1


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "crashtest":
        return crashtest(argv[1:])
    if argv and argv[0] == "bench":
        from .bench import main as bench_main

        return bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Interactive Executive on a simulated Alto (SOSP 1979 reproduction)",
    )
    parser.add_argument("--demo", action="store_true", help="preload demo files")
    parser.add_argument(
        "--script", metavar="TEXT",
        help="run these ;-separated commands instead of reading stdin",
    )
    args = parser.parse_args(argv)

    image = DiskImage(diablo31())
    drive = DiskDrive(image)
    os = AltoOS.format(drive)
    if args.demo:
        build_demo(os)

    print(f"Alto OS reproduction -- {image.shape.name}, "
          f"{os.fs.free_pages()} free pages.  'quit' to exit.")

    if args.script is not None:
        script = "\n".join(part.strip() for part in args.script.split(";")) + "\nquit\n"
        before = len(os.display.text())
        output = os.run_executive(script)
        print(output)
        print(f"[simulated time: {drive.clock.now_s:.1f}s, "
              f"{drive.stats.commands} disk commands]")
        return 0

    while True:
        try:
            line = input("> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        scrolled_before = os.display.scrolled
        snapshot = os.display.text()
        os.executive.execute(line)
        after = os.display.text()
        # Print only what the command added to the display.
        if after.startswith(snapshot) and os.display.scrolled == scrolled_before:
            sys.stdout.write(after[len(snapshot):])
        else:
            sys.stdout.write(after + "\n")
        sys.stdout.flush()
        if not line.strip().lower().startswith("quit") and line.strip().lower() != "quit":
            continue
        return 0


if __name__ == "__main__":
    sys.exit(main())
