"""World swapping (section 4): machine state, state files, InLoad/OutLoad,
coroutine linkage, checkpointing, and booting."""

from .boot import BOOT_FILE_NAME, create_boot_file, hardware_boot, read_boot_pointer
from .checkpoint import Checkpointer, resume_from_checkpoint
from .coroutine import coroutine_call, reply
from .machine import Machine, REGISTER_COUNT
from .statefile import (
    FULL_NAME_WORDS,
    MESSAGE_WORDS,
    STATE_FILE_BYTES,
    check_message,
    full_name_from_words,
    full_name_to_words,
    pack_state,
    unpack_state,
)
from .swap import (
    Halt,
    SHADOW_SUFFIX,
    ProgramRegistry,
    SwapContext,
    Transfer,
    WorldEngine,
    WorldProgram,
    WorldSwapper,
)

__all__ = [
    "BOOT_FILE_NAME",
    "Checkpointer",
    "FULL_NAME_WORDS",
    "Halt",
    "MESSAGE_WORDS",
    "Machine",
    "ProgramRegistry",
    "REGISTER_COUNT",
    "SHADOW_SUFFIX",
    "STATE_FILE_BYTES",
    "SwapContext",
    "Transfer",
    "WorldEngine",
    "WorldProgram",
    "WorldSwapper",
    "check_message",
    "coroutine_call",
    "create_boot_file",
    "full_name_from_words",
    "full_name_to_words",
    "hardware_boot",
    "pack_state",
    "read_boot_pointer",
    "reply",
    "resume_from_checkpoint",
    "unpack_state",
]
