"""The machine whose state gets swapped: memory, registers, devices.

Section 4: "These transfers of control are achieved by defining a
convention for restoring the entire state of the machine from a disk file."

``Machine`` is that state.  We do not interpret Alto instructions; a
*program* in this reproduction is a Python object whose durable variables
live in the machine's simulated memory (exactly as a BCPL program's did),
identified in the state file by name and resumption phase -- the stand-in
for the saved program counter.  The memory image, registers, and type-ahead
buffer are serialized word-for-word; see :mod:`repro.world.statefile`.
"""

from __future__ import annotations

from typing import List, Optional

from ..memory.core import MEMORY_WORDS, Memory
from ..streams.display import DisplayDevice
from ..streams.keyboard import KeyboardDevice
from ..words import check_word

#: Number of general registers saved in a world image (ACs + PC-adjacent
#: state on the real machine).
REGISTER_COUNT = 8


class Machine:
    """Everything a world image must capture."""

    def __init__(
        self,
        memory: Optional[Memory] = None,
        keyboard: Optional[KeyboardDevice] = None,
        display: Optional[DisplayDevice] = None,
    ) -> None:
        self.memory = memory if memory is not None else Memory(MEMORY_WORDS)
        self.keyboard = keyboard if keyboard is not None else KeyboardDevice()
        self.display = display if display is not None else DisplayDevice()
        self.registers: List[int] = [0] * REGISTER_COUNT

    # -- registers ---------------------------------------------------------------

    def set_register(self, index: int, value: int) -> None:
        if not 0 <= index < REGISTER_COUNT:
            raise IndexError(f"register {index} out of range")
        self.registers[index] = check_word(value, "register")

    def get_register(self, index: int) -> int:
        if not 0 <= index < REGISTER_COUNT:
            raise IndexError(f"register {index} out of range")
        return self.registers[index]

    # -- whole-state capture -------------------------------------------------------

    def capture(self) -> dict:
        """The complete machine state as plain data (for state files)."""
        return {
            "memory": self.memory.dump(),
            "registers": list(self.registers),
            "typeahead": self.keyboard.snapshot(),
        }

    def restore(self, state: dict) -> None:
        """Overwrite the machine from :meth:`capture` output."""
        self.memory.load(state["memory"])
        self.registers = [check_word(w, "register") for w in state["registers"]]
        if len(self.registers) != REGISTER_COUNT:
            raise ValueError(f"world image has {len(self.registers)} registers")
        self.keyboard.restore(state["typeahead"])

    def __repr__(self) -> str:
        return f"Machine({self.memory.size} words, typeahead={self.keyboard.available()})"
