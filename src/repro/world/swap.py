"""InLoad and OutLoad (section 4.1), and the world engine that runs swapped
programs.

"OutLoad writes the current machine state on the file, and returns with the
written flag true. ... The InLoad procedure restores the state of the
machine from the given file, and passes a message (about 20 words) to the
restored program.  The effect is that OutLoad returns again, this time with
written false and with the message that was provided in the InLoad call."

We do not interpret machine code, so the "program counter saved inside the
OutLoad procedure" is represented by a *phase name* recorded in the state
file: a program is a :class:`WorldProgram` whose phases are its entry
points, and whose durable variables live in the machine's simulated memory
(exactly as a BCPL program's lived in the real memory image).  The control
discipline, the state-file format, and the disk costs are word-exact.

A phase runs to completion and ends with one of:

* :class:`Transfer` -- the InLoad call that never returns: control moves to
  whatever program the named state file holds;
* :class:`Halt` -- the machine stops (the outer caller gets the result).

Within a phase, :meth:`SwapContext.outload` is OutLoad with written=true:
it writes the state file naming the *resume phase* -- the phase that will
run, message in hand, when somebody InLoads that file later (OutLoad
returning with written=false).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import BadStateFile, FileNotFound, WorldError
from ..fs.file import AltoFile
from ..fs.filesystem import FileSystem
from .machine import Machine
from .statefile import check_message, pack_state, unpack_state

#: Guard against runaway coroutine ping-pong in tests and examples.
DEFAULT_MAX_TRANSFERS = 10_000

#: Suffix of the shadow file :meth:`WorldSwapper.atomic_outload` writes
#: before committing it to the real state-file name.
SHADOW_SUFFIX = "!new"


# ----------------------------------------------------------------------------
# Actions a phase can end with
# ----------------------------------------------------------------------------


@dataclass(frozen=True)
class Transfer:
    """InLoad: restore the machine from *file_name*, delivering *message*."""

    file_name: str
    message: Sequence[int] = ()


@dataclass(frozen=True)
class Halt:
    """Stop the machine; *result* is handed to the engine's caller."""

    result: object = None


# ----------------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------------


class WorldProgram:
    """A program that can be world-swapped.

    Subclasses set ``name`` and implement phases as methods named
    ``phase_<phase>``; each receives ``(ctx, message)`` and returns a
    :class:`Transfer` or :class:`Halt`.  All state a phase wants to survive
    a swap must live in the machine (memory, registers, type-ahead) -- the
    Python object is reconstructed fresh at every resumption, just as code
    was reloaded with the image on the real machine.
    """

    name: str = ""

    def run_phase(self, ctx: "SwapContext", phase: str, message: List[int]):
        method = getattr(self, f"phase_{phase}", None)
        if method is None:
            raise WorldError(f"program {self.name!r} has no phase {phase!r}")
        return method(ctx, message)


class ProgramRegistry:
    """Maps program names to factories (the stand-in for code-in-image)."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], WorldProgram]] = {}

    def register(self, program_class: Callable[[], WorldProgram]) -> Callable:
        instance = program_class()
        if not instance.name:
            raise WorldError(f"{program_class!r} has no program name")
        self._factories[instance.name] = program_class
        return program_class

    def create(self, name: str) -> WorldProgram:
        factory = self._factories.get(name)
        if factory is None:
            raise WorldError(f"no program registered under {name!r}")
        return factory()

    def names(self) -> List[str]:
        return sorted(self._factories)


# ----------------------------------------------------------------------------
# The swapper: OutLoad / InLoad proper
# ----------------------------------------------------------------------------


class WorldSwapper:
    """Writes and restores world images on ordinary files.

    Keeps an open-file cache (the "hints for important files" of Junta
    level 3): repeated OutLoads to the same state file are pure data writes
    at full disk speed, which is where the paper's "about a second" comes
    from.
    """

    def __init__(self, fs: FileSystem, machine: Machine) -> None:
        self.fs = fs
        self.machine = machine
        self._files: Dict[str, AltoFile] = {}
        self.outloads = 0
        self.inloads = 0

    # -- file cache --------------------------------------------------------------

    def state_file(self, name: str, create: bool = True) -> AltoFile:
        cached = self._files.get(name)
        if cached is not None:
            return cached
        try:
            file = self.fs.open_file(name)
        except FileNotFound:
            if not create:
                raise
            file = self.fs.create_file(name)
        self._files[name] = file
        return file

    def forget_files(self) -> None:
        """Drop the hint cache (e.g. after a scavenge moved things)."""
        self._files.clear()

    # -- OutLoad ------------------------------------------------------------------

    def outload(self, file_name: str, program: str, resume_phase: str) -> AltoFile:
        """Write the current machine state; "returns with written true".

        The written=false return happens when someone InLoads the file: the
        engine then runs ``program.phase_<resume_phase>`` with the message.
        """
        obs = self.fs.drive.clock.obs
        with obs.span("world.outload", "world", file=file_name,
                      program=program, phase=resume_phase):
            state = self.machine.capture()
            data = pack_state(
                state["memory"], state["registers"], program, resume_phase, state["typeahead"]
            )
            file = self.state_file(file_name)
            file.write_data(data, now=self.fs.now())
        self.outloads += 1
        obs.counter("world.outloads").inc()
        return file

    def atomic_outload(self, file_name: str, program: str, resume_phase: str) -> AltoFile:
        """Crash-safe OutLoad: old state or new state, never neither.

        The plain :meth:`outload` rewrites the state file in place, so a
        crash mid-write tears it -- detected later by the state file's
        checksums (:class:`~repro.errors.BadStateFile`), but the old state
        is gone.  Here the new state is written *completely* to a shadow
        file first, and only then takes over the real name; a crash at any
        write leaves either the old file intact or the complete new state
        (possibly still under the shadow name, where :meth:`inload` finds
        it).  Costs roughly twice the disk traffic of a plain OutLoad --
        that is why it is a separate call and not the default.
        """
        obs = self.fs.drive.clock.obs
        with obs.span("world.outload", "world", file=file_name,
                      program=program, phase=resume_phase, atomic=True):
            state = self.machine.capture()
            data = pack_state(
                state["memory"], state["registers"], program, resume_phase, state["typeahead"]
            )
            shadow_name = file_name + SHADOW_SUFFIX
            try:
                self.fs.delete_file(shadow_name)
            except FileNotFound:
                pass
            shadow = self.fs.create_file(shadow_name)
            shadow.write_data(data, now=self.fs.now())
            # The shadow must be *durably* complete before the old state is
            # destroyed: on a write-back drive its data may still be buffered.
            self.fs.flush()
            # Commit: the complete new state takes over the real name.
            try:
                self.fs.delete_file(file_name)
            except FileNotFound:
                pass
            self._files.pop(file_name, None)
            self.fs.rename_file(shadow_name, file_name)
            self.fs.flush()
            file = self.fs.open_file(file_name)
        self.outloads += 1
        obs.counter("world.outloads").inc()
        self._files[file_name] = file
        return file

    def emergency_outload(self, file_name: str, program: str) -> AltoFile:
        """The emergency bootstrap OutLoad (section 4.1): saves memory but
        "could not preserve some of the most vital state (e.g., processor
        registers)" -- registers are written as zeros."""
        obs = self.fs.drive.clock.obs
        with obs.span("world.outload", "world", file=file_name,
                      program=program, phase="emergency", emergency=True):
            state = self.machine.capture()
            data = pack_state(
                state["memory"], [0] * len(state["registers"]), program, "emergency",
                state["typeahead"],
            )
            file = self.state_file(file_name)
            file.write_data(data, now=self.fs.now())
        self.outloads += 1
        obs.counter("world.outloads").inc()
        return file

    # -- InLoad -------------------------------------------------------------------

    def inload(self, file_name: str):
        """Restore the machine from a state file.

        Returns (program name, phase) -- the engine resumes there.  Raises
        :class:`BadStateFile` if the image fails validation.  If the file
        is missing or invalid but a complete shadow from an interrupted
        :meth:`atomic_outload` exists, the shadow is restored instead.
        """
        obs = self.fs.drive.clock.obs
        with obs.span("world.inload", "world", file=file_name):
            try:
                file = self.state_file(file_name, create=False)
                memory_words, registers, program, phase, typeahead = unpack_state(file.read_data())
            except (FileNotFound, BadStateFile) as primary:
                # A crash between an atomic OutLoad's commit steps can leave
                # the complete new state only under the shadow name.
                try:
                    shadow = self.fs.open_file(file_name + SHADOW_SUFFIX)
                    memory_words, registers, program, phase, typeahead = unpack_state(
                        shadow.read_data()
                    )
                except (FileNotFound, BadStateFile):
                    raise primary
            self.machine.restore(
                {"memory": memory_words, "registers": registers, "typeahead": typeahead}
            )
        self.inloads += 1
        obs.counter("world.inloads").inc()
        return program, phase


# ----------------------------------------------------------------------------
# The engine: runs programs and performs their transfers
# ----------------------------------------------------------------------------


@dataclass
class SwapContext:
    """What a running phase sees: the machine, the file system, and OutLoad."""

    machine: Machine
    fs: FileSystem
    swapper: WorldSwapper
    program: str = ""
    transfers: int = 0

    def outload(self, file_name: str, resume_phase: str, atomic: bool = False) -> None:
        """OutLoad with written=true: write our state, keep running.

        With ``atomic=True`` the crash-safe shadow-and-commit protocol is
        used (see :meth:`WorldSwapper.atomic_outload`).
        """
        if atomic:
            self.swapper.atomic_outload(file_name, self.program, resume_phase)
        else:
            self.swapper.outload(file_name, self.program, resume_phase)

    def now(self) -> int:
        return self.fs.now()


class WorldEngine:
    """Runs :class:`WorldProgram` phases, performing InLoad transfers."""

    def __init__(
        self,
        machine: Machine,
        fs: FileSystem,
        registry: ProgramRegistry,
        max_transfers: int = DEFAULT_MAX_TRANSFERS,
    ) -> None:
        self.machine = machine
        self.fs = fs
        self.registry = registry
        self.swapper = WorldSwapper(fs, machine)
        self.max_transfers = max_transfers
        self.transfer_log: List[str] = []

    def run(
        self,
        program_name: str,
        phase: str = "start",
        message: Optional[Sequence[int]] = None,
    ):
        """Run from (program, phase) until a :class:`Halt`; returns its result."""
        current_message = check_message(message)
        transfers = 0
        while True:
            program = self.registry.create(program_name)
            ctx = SwapContext(
                machine=self.machine,
                fs=self.fs,
                swapper=self.swapper,
                program=program_name,
                transfers=transfers,
            )
            action = program.run_phase(ctx, phase, current_message)
            if isinstance(action, Halt):
                return action.result
            if not isinstance(action, Transfer):
                raise WorldError(
                    f"phase {phase!r} of {program_name!r} returned {action!r}, "
                    "expected Transfer or Halt"
                )
            transfers += 1
            if transfers > self.max_transfers:
                raise WorldError(f"more than {self.max_transfers} world transfers; runaway?")
            self.transfer_log.append(action.file_name)
            program_name, phase = self.swapper.inload(action.file_name)
            current_message = check_message(action.message)

    def run_from_file(self, file_name: str, message: Optional[Sequence[int]] = None):
        """InLoad a state file and run from whatever it holds (the way the
        operating system itself is entered from a foreign environment,
        section 5.1)."""
        program_name, phase = self.swapper.inload(file_name)
        return self.run_via_resume(program_name, phase, message)

    def run_via_resume(
        self, program_name: str, phase: str, message: Optional[Sequence[int]] = None
    ):
        return self.run(program_name, phase=phase, message=message)
