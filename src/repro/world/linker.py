"""The boot-file linker (section 4).

"This boot file may be written by a linker that writes programs and data in
the file, arranged so that they will constitute a running program when the
machine state is restored from the file."

:func:`link_boot_program` does exactly that: it loads a code file into the
machine's low memory (binding its fixup table against the current Junta
levels), writes the entry name and arguments *into the memory image* at a
conventional address -- the linker's "data" -- and OutLoads the whole world
into the boot file.  Pressing the boot button then restores that world and
runs the program, with no file system or loader needed at boot time: the
program is already in (restored) memory.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import LoadError
from ..words import string_to_words, words_to_string
from .swap import Halt, WorldProgram

#: Where the linker writes its launch vector in the memory image
#: (below the program load address).
ENTRY_VECTOR = 0x00C0
_ENTRY_WORDS = 20
_ARGS_WORDS = 30
LAUNCH_VECTOR_WORDS = _ENTRY_WORDS + _ARGS_WORDS

#: The name under which the generic launcher is registered.
LINKED_RUNNER = "linked-program"


def write_launch_vector(memory, entry: str, args: Sequence[str]) -> None:
    """Record the entry name and argument string in the memory image."""
    entry_words = string_to_words(entry, max_bytes=_ENTRY_WORDS * 2 - 1)
    entry_words += [0] * (_ENTRY_WORDS - len(entry_words))
    args_text = " ".join(args)
    args_words = string_to_words(args_text, max_bytes=_ARGS_WORDS * 2 - 1)
    args_words += [0] * (_ARGS_WORDS - len(args_words))
    memory.write_block(ENTRY_VECTOR, entry_words + args_words)


def read_launch_vector(memory) -> tuple:
    """Decode (entry, args) from the memory image."""
    entry = words_to_string(memory.read_block(ENTRY_VECTOR, _ENTRY_WORDS))
    args_text = words_to_string(
        memory.read_block(ENTRY_VECTOR + _ENTRY_WORDS, _ARGS_WORDS)
    )
    if not entry:
        raise LoadError("boot image has no launch vector")
    return entry, args_text.split() if args_text else []


def register_linked_runner(os) -> None:
    """Register the generic launcher world program (idempotent).

    The launcher is the few instructions a real boot image would begin
    with: read the launch vector out of (restored) memory and jump to the
    entry.
    """
    if LINKED_RUNNER in os.programs.names():
        return

    class LinkedProgramRunner(WorldProgram):
        name = LINKED_RUNNER

        def phase_run(self, ctx, message):
            entry, args = read_launch_vector(ctx.machine.memory)
            behaviour = os.executables.lookup(entry)
            return Halt(behaviour(os, args))

    os.programs.register(LinkedProgramRunner)


def link_boot_program(
    os,
    code_file,
    boot_file_name: str = "Sys.boot",
    args: Sequence[str] = (),
) -> None:
    """Link *code_file* into a bootable world in *boot_file_name*.

    The boot file must already exist (see
    :func:`repro.world.boot.create_boot_file`); its contents are replaced
    with a world image that runs the program when booted.
    """
    loaded = os.loader.load_words(code_file.pack_words())
    write_launch_vector(os.machine.memory, loaded.entry, args)
    register_linked_runner(os)
    os.engine.swapper.outload(boot_file_name, LINKED_RUNNER, "run")
