"""Booting (section 4): restoring the world from a fixed disk location.

"A hardware bootstrap button causes the state of the machine to be restored
from a disk file whose first page is kept at a fixed location on the disk.
This boot file may be written by a linker ... Alternatively, the file may
have been written by saving the state of a running program that will be
resumed each time the machine is bootstrapped."

The fixed location is disk address 0 (reserved at format time).  A boot
file is an ordinary file whose *first data page* (page 1) is pinned there;
the hardware reads that sector, follows the label's back link to the
leader, and restores the world.
"""

from __future__ import annotations

from typing import Tuple

from ..disk.drive import DiskDrive
from ..disk.geometry import NIL
from ..errors import FileFormatError, WorldError
from ..fs.allocator import PageAllocator
from ..fs.descriptor import BOOT_PAGE_ADDRESS
from ..fs.file import AltoFile
from ..fs.filesystem import FileSystem
from ..fs.leader import LeaderPage
from ..fs.names import FileId, FullName, page_number_from_label
from ..fs.page import PageIO
from .machine import Machine
from .swap import WorldEngine

BOOT_FILE_NAME = "Sys.boot"


def create_boot_file(fs: FileSystem, name: str = BOOT_FILE_NAME) -> AltoFile:
    """Create the boot file, pinning its page 1 at disk address 0.

    The file starts empty; writing a world image into it (via
    ``WorldSwapper.outload``) makes the pack bootable with that image.
    """
    if fs.root.lookup(name) is not None:
        raise FileFormatError(f"{name!r} already exists")
    fid = fs.new_fid()
    now = fs.now()
    # Claim page 1 at the fixed address first (the sector is label-free even
    # though the map has it reserved).
    page1_label = fid.label_for(1, length=0, next_link=NIL, prev_link=NIL)
    fs.page_io.claim(BOOT_PAGE_ADDRESS, page1_label, [])
    fs.allocator.mark_busy(BOOT_PAGE_ADDRESS)
    # Now the leader, linked to it.
    leader = LeaderPage(name=name, created=now, written=now, read=now, last_page_number=1,
                        last_page_address=BOOT_PAGE_ADDRESS)
    leader_label = fid.label_for(0, length=512, next_link=BOOT_PAGE_ADDRESS, prev_link=NIL)
    leader_address = fs.allocator.allocate(fs.page_io, leader_label, leader.pack())
    # Fix page 1's back link (one revolution).
    fs.page_io.rewrite_label(
        FullName(fid, 1, BOOT_PAGE_ADDRESS),
        fid.label_for(1, length=0, next_link=NIL, prev_link=leader_address),
    )
    fs.root.add(name, FullName(fid, 0, leader_address))
    file = AltoFile.open(fs.page_io, fs.allocator, FullName(fid, 0, leader_address))
    return file


def read_boot_pointer(drive: DiskDrive) -> FullName:
    """What the boot hardware does first: read the fixed sector's label and
    derive the boot file's full name (leader via the back link)."""
    label = drive.read_label(BOOT_PAGE_ADDRESS)
    if not label.in_use:
        raise WorldError("no boot file installed (fixed sector is free)")
    if page_number_from_label(label) != 1:
        raise WorldError("fixed sector does not hold page 1 of a boot file")
    if label.prev_link == NIL:
        raise WorldError("boot page has no back link to its leader")
    return FullName(FileId.from_label(label), 0, label.prev_link)


def hardware_boot(engine: WorldEngine):
    """Press the boot button: restore the world from the fixed location and
    run it.  Returns whatever the booted world eventually Halts with."""
    leader = read_boot_pointer(engine.fs.drive)
    file = AltoFile.open(engine.fs.page_io, engine.fs.allocator, leader)
    # Run through the swapper so its file cache warms up for later OutLoads.
    engine.swapper._files[file.name] = file
    return engine.run_from_file(file.name)
