"""Checkpointing (section 4): periodic state saves and resumption.

"A program may occasionally save its state on a disk file.  It may then be
interrupted, either by a processor malfunction or by user action (e.g.,
bootstrapping the machine).  The computation may be resumed later by
restoring the machine state from the checkpoint file."
"""

from __future__ import annotations

from typing import Optional

from ..errors import BadStateFile
from .swap import SwapContext, WorldEngine


class Checkpointer:
    """Periodic checkpoints against the simulated clock."""

    def __init__(self, file_name: str, interval_s: float, resume_phase: str = "resume") -> None:
        if interval_s <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.file_name = file_name
        self.interval_s = interval_s
        self.resume_phase = resume_phase
        self._last_s: Optional[float] = None
        self.checkpoints_taken = 0

    def maybe_checkpoint(self, ctx: SwapContext) -> bool:
        """Checkpoint if the interval has elapsed; returns True if taken.

        The checkpoint records *resume_phase*, so after a crash the program
        restarts there with everything its memory held at the save.
        """
        now = ctx.fs.drive.clock.now_s
        if self._last_s is not None and now - self._last_s < self.interval_s:
            return False
        self.checkpoint(ctx)
        return True

    def checkpoint(self, ctx: SwapContext) -> None:
        """Unconditionally save state now."""
        ctx.outload(self.file_name, self.resume_phase)
        self._last_s = ctx.fs.drive.clock.now_s
        self.checkpoints_taken += 1


def resume_from_checkpoint(engine: WorldEngine, file_name: str):
    """Restore a checkpointed computation and run it to completion.

    Raises :class:`BadStateFile` when the checkpoint is torn or missing --
    callers typically fall back to starting the computation fresh.
    """
    return engine.run_from_file(file_name)
