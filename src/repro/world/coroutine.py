"""The coroutine linkage built on InLoad/OutLoad (section 4.1).

"Code for a coroutine linkage thus looks like:

    messageToPartner = parameters to pass in coroutine call;
    (written, messageFromPartner) := OutLoad(myStateFN);
    if written then InLoad(partnerStateFN, messageToPartner);
    messageFromPartner contains parameters passed to me;"

:func:`coroutine_call` packages that idiom: write my state resuming at
*resume_phase*, then transfer to the partner's state file with the message.
The partner's reply arrives as the message of *resume_phase*.  Return
addresses travel in the message itself, encoded with
:func:`~repro.world.statefile.full_name_to_words`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .statefile import check_message
from .swap import SwapContext, Transfer


def coroutine_call(
    ctx: SwapContext,
    my_state_file: str,
    partner_state_file: str,
    message: Optional[Sequence[int]] = None,
    resume_phase: str = "resumed",
) -> Transfer:
    """One coroutine step: save me, call my partner.

    Returns the :class:`Transfer` the current phase should return; when the
    partner (or anyone) InLoads *my_state_file*, this program resumes at
    *resume_phase* with whatever message that InLoad carried.
    """
    ctx.outload(my_state_file, resume_phase)
    return Transfer(partner_state_file, check_message(message))


def reply(ctx: SwapContext, partner_state_file: str, message: Optional[Sequence[int]] = None,
          my_state_file: Optional[str] = None, resume_phase: str = "resumed") -> Transfer:
    """Answer a coroutine call: optionally save our own state first, then
    transfer back to the partner with *message*."""
    if my_state_file is not None:
        ctx.outload(my_state_file, resume_phase)
    return Transfer(partner_state_file, check_message(message))
