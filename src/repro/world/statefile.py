"""The on-disk layout of a world image (sections 4, 4.1).

A state file is an ordinary Alto file whose data is:

* one 512-byte header page -- magic, format version, a checksum of the
  memory image, the saved registers, the resumption phase and program name
  (the stand-in for the saved program counter, which on the real machine
  was "inside the OutLoad procedure itself"), and the saved type-ahead
  buffer;
* 256 pages of memory image (65536 words, word-exact).

The message vector is NOT part of the file: InLoad delivers it to the
restored program in registers, per section 4.1 ("passes a message (about 20
words) to the restored program").  Helpers here encode full names into
message words, the idiom for return addresses ("often the message contains
a return address, that is, the full name of a file to restore upon
return").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import BadStateFile, MessageTooLong
from ..fs.names import FileId, FullName
from ..memory.core import MEMORY_WORDS
from ..words import (
    bytes_to_words,
    checksum,
    from_double_word,
    string_to_words,
    to_double_word,
    words_to_bytes,
    words_to_string,
)
from .machine import REGISTER_COUNT

#: Maximum words in an InLoad message ("about 20 words").
MESSAGE_WORDS = 20

_MAGIC = 0xA170  # "Alto"
_FORMAT_VERSION = 1
_HEADER_PAGE_WORDS = 256
_NAME_FIELD_WORDS = 20
_TYPEAHEAD_FIELD_WORDS = 64

#: Total data bytes of a state file: header page + memory image.
STATE_FILE_BYTES = (_HEADER_PAGE_WORDS + MEMORY_WORDS) * 2


def check_message(message: Optional[Sequence[int]]) -> List[int]:
    """Validate and normalize a message vector (None becomes empty)."""
    if message is None:
        return []
    message = list(message)
    if len(message) > MESSAGE_WORDS:
        raise MessageTooLong(f"message has {len(message)} words, limit is {MESSAGE_WORDS}")
    for w in message:
        if not 0 <= w <= 0xFFFF:
            raise MessageTooLong(f"message word out of range: {w}")
    return message


def pack_state(
    memory_words: Sequence[int],
    registers: Sequence[int],
    program: str,
    phase: str,
    typeahead: str,
) -> bytes:
    """Serialize a captured machine state to state-file bytes."""
    if len(memory_words) != MEMORY_WORDS:
        raise BadStateFile(f"memory image has {len(memory_words)} words, need {MEMORY_WORDS}")
    if len(registers) != REGISTER_COUNT:
        raise BadStateFile(f"need {REGISTER_COUNT} registers, got {len(registers)}")
    header = [0] * _HEADER_PAGE_WORDS
    header[0] = _MAGIC
    header[1] = _FORMAT_VERSION
    header[2] = checksum(memory_words)
    header[3 : 3 + REGISTER_COUNT] = list(registers)
    cursor = 3 + REGISTER_COUNT
    header[cursor : cursor + _NAME_FIELD_WORDS] = _string_field(program, _NAME_FIELD_WORDS)
    cursor += _NAME_FIELD_WORDS
    header[cursor : cursor + _NAME_FIELD_WORDS] = _string_field(phase, _NAME_FIELD_WORDS)
    cursor += _NAME_FIELD_WORDS
    header[cursor : cursor + _TYPEAHEAD_FIELD_WORDS] = _string_field(
        typeahead, _TYPEAHEAD_FIELD_WORDS
    )
    return words_to_bytes(header + list(memory_words))


def unpack_state(data: bytes) -> Tuple[List[int], List[int], str, str, str]:
    """Parse state-file bytes; returns (memory, registers, program, phase,
    typeahead).  Raises :class:`BadStateFile` on any validation failure --
    a torn OutLoad must never be silently resumed."""
    if len(data) != STATE_FILE_BYTES:
        raise BadStateFile(f"state file has {len(data)} bytes, need {STATE_FILE_BYTES}")
    words = bytes_to_words(data)
    header, memory_words = words[:_HEADER_PAGE_WORDS], words[_HEADER_PAGE_WORDS:]
    if header[0] != _MAGIC:
        raise BadStateFile(f"bad state-file magic {header[0]:#06x}")
    if header[1] != _FORMAT_VERSION:
        raise BadStateFile(f"unknown state-file version {header[1]}")
    if header[2] != checksum(memory_words):
        raise BadStateFile("memory image checksum mismatch (torn OutLoad?)")
    registers = header[3 : 3 + REGISTER_COUNT]
    cursor = 3 + REGISTER_COUNT
    try:
        program = words_to_string(header[cursor : cursor + _NAME_FIELD_WORDS])
        phase = words_to_string(header[cursor + _NAME_FIELD_WORDS : cursor + 2 * _NAME_FIELD_WORDS])
        typeahead = words_to_string(
            header[cursor + 2 * _NAME_FIELD_WORDS : cursor + 2 * _NAME_FIELD_WORDS + _TYPEAHEAD_FIELD_WORDS]
        )
    except ValueError as exc:
        raise BadStateFile(f"corrupt state-file strings: {exc}") from exc
    if not program:
        raise BadStateFile("state file names no program")
    return memory_words, registers, program, phase, typeahead


def _string_field(text: str, width: int) -> List[int]:
    max_bytes = width * 2 - 1
    if len(text) > max_bytes:
        raise BadStateFile(f"string too long for state file field: {len(text)} > {max_bytes}")
    words = string_to_words(text, max_bytes=max_bytes)
    return words + [0] * (width - len(words))


# ----------------------------------------------------------------------------
# Full names in message vectors (the return-address idiom)
# ----------------------------------------------------------------------------

#: Words one encoded full name occupies in a message.
FULL_NAME_WORDS = 4


def full_name_to_words(name: FullName) -> List[int]:
    """Encode (serial, version, leader address) into four message words."""
    high, low = to_double_word(name.fid.serial)
    return [high, low, name.fid.version, name.address]


def full_name_from_words(words: Sequence[int]) -> FullName:
    if len(words) < FULL_NAME_WORDS:
        raise BadStateFile(f"need {FULL_NAME_WORDS} words for a full name, got {len(words)}")
    return FullName(
        FileId(from_double_word(words[0], words[1]), words[2]),
        page_number=0,
        address=words[3],
    )
