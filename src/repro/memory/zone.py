"""Zones: the BCPL-style free-storage allocator.

Section 2: stream creation "takes as parameters ... a zone object which is
used to acquire and release working storage"; section 5.2: "The storage
allocator ... will build zone objects to allocate any part of memory,
whether in the system free storage region or not."

A ``Zone`` really allocates inside the simulated :class:`~repro.memory.core.Memory`
-- its free list lives in the words it manages, exactly like the BCPL
original -- so Junta can free a level's storage and hand the words to a user
zone, and a world swap captures allocator state for free because it *is*
memory contents.

Block layout (addresses are word addresses inside the zone's region):

* allocated block: ``[size][user words ... ]`` -- user pointer is header+1
* free block:      ``[size][next-free ]...``   -- address-ordered free list

``size`` counts the whole block including the header.  The free list is kept
sorted by address and adjacent free blocks are coalesced on free, so a zone
never fragments irreversibly.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..errors import ZoneCorrupt, ZoneExhausted
from ..words import WORD_MASK
from .core import Memory, Region

#: End-of-free-list sentinel (not a valid zone-internal address).
FREE_LIST_END = WORD_MASK

#: Smallest block: header word + link word.
MIN_BLOCK = 2


class Zone:
    """A free-storage allocator over one memory region."""

    def __init__(self, region: Region, name: str = "zone") -> None:
        if len(region) < MIN_BLOCK:
            raise ValueError(f"region too small for a zone: {len(region)} words")
        if region.end > FREE_LIST_END:
            raise ValueError("zone region collides with the free-list sentinel")
        self.region = region
        self.name = name
        self._memory = region.memory
        # One free block spanning the whole region.
        self._memory.write(region.start, len(region))
        self._memory.write(region.start + 1, FREE_LIST_END)
        self._free_head = region.start
        self.allocations = 0
        self.frees = 0

    # ------------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------------

    def allocate(self, nwords: int) -> int:
        """First-fit allocate *nwords* user words; returns the user address.

        Raises :class:`ZoneExhausted` when no free block is big enough.
        """
        if nwords < 1:
            raise ValueError("allocation must be at least one word")
        need = max(nwords + 1, MIN_BLOCK)
        prev = None
        block = self._free_head
        while block != FREE_LIST_END:
            size = self._memory.read(block)
            nxt = self._memory.read(block + 1)
            if size >= need:
                self._take(prev, block, size, need, nxt)
                self.allocations += 1
                return block + 1
            prev, block = block, nxt
        raise ZoneExhausted(f"{self.name}: no free block of {need} words (largest {self.largest_free()})")

    def _take(self, prev, block: int, size: int, need: int, nxt: int) -> None:
        """Carve *need* words off *block*, splitting when the rest is usable."""
        remainder = size - need
        if remainder >= MIN_BLOCK:
            tail = block + need
            self._memory.write(tail, remainder)
            self._memory.write(tail + 1, nxt)
            replacement = tail
            self._memory.write(block, need)
        else:
            # Too small to split; the whole block goes to the caller.
            replacement = nxt
        self._link(prev, replacement)

    def _link(self, prev, target: int) -> None:
        if prev is None:
            self._free_head = target
        else:
            self._memory.write(prev + 1, target)

    # ------------------------------------------------------------------------
    # Freeing
    # ------------------------------------------------------------------------

    def free(self, user_address: int) -> None:
        """Return a block to the zone, coalescing with neighbours."""
        block = user_address - 1
        if not (self.region.start <= block < self.region.end):
            raise ZoneCorrupt(f"{self.name}: address {user_address} not in this zone")
        size = self._memory.read(block)
        if size < MIN_BLOCK or block + size > self.region.end:
            raise ZoneCorrupt(f"{self.name}: bad block header at {block} (size {size})")

        # Find the address-ordered insertion point.
        prev = None
        cursor = self._free_head
        while cursor != FREE_LIST_END and cursor < block:
            prev, cursor = cursor, self._memory.read(cursor + 1)
        if cursor == block or (prev is not None and prev + self._memory.read(prev) > block):
            raise ZoneCorrupt(f"{self.name}: double free or overlap at {user_address}")
        if cursor != FREE_LIST_END and block + size > cursor:
            raise ZoneCorrupt(f"{self.name}: freed block at {block} overlaps free block at {cursor}")

        # Coalesce forward.
        if cursor != FREE_LIST_END and block + size == cursor:
            size += self._memory.read(cursor)
            cursor = self._memory.read(cursor + 1)
        self._memory.write(block, size)
        self._memory.write(block + 1, cursor)

        # Coalesce backward.
        if prev is not None and prev + self._memory.read(prev) == block:
            self._memory.write(prev, self._memory.read(prev) + size)
            self._memory.write(prev + 1, cursor)
        else:
            self._link(prev, block)
        self.frees += 1

    # ------------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------------

    def free_blocks(self) -> Iterator[Tuple[int, int]]:
        """Yield (address, size) for each free block, in address order."""
        block = self._free_head
        seen = 0
        while block != FREE_LIST_END:
            if not (self.region.start <= block < self.region.end):
                raise ZoneCorrupt(f"{self.name}: free list escaped the region at {block}")
            seen += 1
            if seen > len(self.region):
                raise ZoneCorrupt(f"{self.name}: free list cycle")
            size = self._memory.read(block)
            yield block, size
            block = self._memory.read(block + 1)

    def free_words(self) -> int:
        """Total words on the free list (including headers)."""
        return sum(size for _addr, size in self.free_blocks())

    def largest_free(self) -> int:
        """Largest single allocation (in user words) that could succeed now."""
        largest = max((size for _addr, size in self.free_blocks()), default=0)
        return max(largest - 1, 0)

    def block_size(self, user_address: int) -> int:
        """User words in the allocated block at *user_address*."""
        return self._memory.read(user_address - 1) - 1

    def check(self) -> None:
        """Validate free-list invariants; raises :class:`ZoneCorrupt`."""
        last_end = None
        for addr, size in self.free_blocks():
            if size < MIN_BLOCK or addr + size > self.region.end:
                raise ZoneCorrupt(f"{self.name}: bad free block ({addr}, {size})")
            if last_end is not None:
                if addr < last_end:
                    raise ZoneCorrupt(f"{self.name}: free list out of order at {addr}")
                if addr == last_end:
                    raise ZoneCorrupt(f"{self.name}: uncoalesced adjacent free blocks at {addr}")
            last_end = addr + size

    def __repr__(self) -> str:
        return f"Zone({self.name!r}, {self.region}, free={self.free_words()})"


def allocate_vector(zone: Zone, values: List[int]) -> int:
    """Allocate and initialize a BCPL-style vector; returns its address."""
    address = zone.allocate(max(len(values), 1))
    zone.region.memory.write_block(address, values)
    return address
