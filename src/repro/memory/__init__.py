"""The simulated Alto main memory and the zone storage allocator."""

from .core import MEMORY_WORDS, Memory, Region
from .zone import FREE_LIST_END, MIN_BLOCK, Zone, allocate_vector

__all__ = [
    "FREE_LIST_END",
    "MEMORY_WORDS",
    "MIN_BLOCK",
    "Memory",
    "Region",
    "Zone",
    "allocate_vector",
]
