"""The machine's main memory: 64k 16-bit words.

Section 2: "a 16-bit processor, 64k words of 800 ns memory".  Everything the
operating system keeps resident -- the Junta levels, zones, stream objects,
the type-ahead buffer -- lives in this one address space, and the world-swap
machinery of section 4 serializes it wholesale to disk.

``Memory`` is a flat word array with bounds discipline; ``Region`` is a
half-open window onto it used by zones and the Junta level layout.  There is
deliberately no protection: "There is no distinction between procedures and
data of the user and those of the system" (section 5.2).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import MemoryFault
from ..words import WORD_MASK, check_word

#: Size of the Alto address space in words.
MEMORY_WORDS = 0x10000


class Memory:
    """A flat, unprotected 64k-word memory."""

    def __init__(self, size: int = MEMORY_WORDS, fill: int = 0) -> None:
        if not 0 < size <= MEMORY_WORDS:
            raise ValueError(f"memory size must be in (0, {MEMORY_WORDS}], got {size}")
        check_word(fill, "fill word")
        self.size = size
        self._words: List[int] = [fill] * size

    # -- single-word access -------------------------------------------------

    def read(self, address: int) -> int:
        self._check(address)
        return self._words[address]

    def write(self, address: int, value: int) -> None:
        self._check(address)
        self._words[address] = check_word(value, "memory word")

    def __getitem__(self, address: int) -> int:
        return self.read(address)

    def __setitem__(self, address: int, value: int) -> None:
        self.write(address, value)

    # -- block access ---------------------------------------------------------

    def read_block(self, address: int, count: int) -> List[int]:
        if count < 0:
            raise ValueError("count must be non-negative")
        self._check_range(address, count)
        return self._words[address : address + count]

    def write_block(self, address: int, values: Sequence[int]) -> None:
        self._check_range(address, len(values))
        for offset, value in enumerate(values):
            self._words[address + offset] = check_word(value, "memory word")

    def fill(self, address: int, count: int, value: int = 0) -> None:
        self._check_range(address, count)
        check_word(value, "fill word")
        self._words[address : address + count] = [value] * count

    def dump(self) -> List[int]:
        """The entire contents, for world-swap serialization."""
        return list(self._words)

    def load(self, words: Sequence[int]) -> None:
        """Overwrite the entire contents, for world-swap restore."""
        if len(words) != self.size:
            raise MemoryFault(f"world image has {len(words)} words, memory has {self.size}")
        for w in words:
            check_word(w, "memory word")
        self._words = list(words)

    # -- bounds ------------------------------------------------------------------

    def _check(self, address: int) -> None:
        if not isinstance(address, int) or not 0 <= address < self.size:
            raise MemoryFault(f"address {address} outside memory of {self.size} words")

    def _check_range(self, address: int, count: int) -> None:
        self._check(address)
        if count and not 0 <= address + count <= self.size:
            raise MemoryFault(f"range [{address}, {address + count}) outside memory of {self.size} words")

    def region(self, start: int, size: int) -> "Region":
        return Region(self, start, size)


class Region:
    """A half-open window [start, start+size) onto a memory.

    Junta levels and zones hand these around instead of bare addresses so
    that misuse faults at the boundary it crosses.
    """

    def __init__(self, memory: Memory, start: int, size: int) -> None:
        if size < 0:
            raise ValueError("region size must be non-negative")
        memory._check_range(start, size)
        self.memory = memory
        self.start = start
        self.size = size

    @property
    def end(self) -> int:
        """One past the last word of the region."""
        return self.start + self.size

    def __len__(self) -> int:
        return self.size

    def __contains__(self, address: int) -> bool:
        return self.start <= address < self.end

    def read(self, offset: int) -> int:
        self._check_offset(offset)
        return self.memory.read(self.start + offset)

    def write(self, offset: int, value: int) -> None:
        self._check_offset(offset)
        self.memory.write(self.start + offset, value)

    def read_block(self, offset: int, count: int) -> List[int]:
        self._check_offset_range(offset, count)
        return self.memory.read_block(self.start + offset, count)

    def write_block(self, offset: int, values: Sequence[int]) -> None:
        self._check_offset_range(offset, len(values))
        self.memory.write_block(self.start + offset, values)

    def fill(self, value: int = 0) -> None:
        self.memory.fill(self.start, self.size, value)

    def subregion(self, offset: int, size: int) -> "Region":
        self._check_offset_range(offset, size)
        return Region(self.memory, self.start + offset, size)

    def _check_offset(self, offset: int) -> None:
        if not 0 <= offset < self.size:
            raise MemoryFault(f"offset {offset} outside region of {self.size} words")

    def _check_offset_range(self, offset: int, count: int) -> None:
        if not (0 <= offset and count >= 0 and offset + count <= self.size):
            raise MemoryFault(
                f"range [{offset}, {offset + count}) outside region of {self.size} words"
            )

    def __repr__(self) -> str:
        return f"Region({self.start:#06x}..{self.end:#06x})"
