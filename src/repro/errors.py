"""Exception hierarchy for the reproduction.

The paper's robustness story rests on a small number of failure signals: a
label check that fails, a hint that turns out to be stale, a page that is
permanently bad.  Each gets a distinct exception type so that callers can
implement the recovery ladder of section 3.6 ("the program has several
options...") by catching precisely the failure they can handle.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Disk-level errors
# ---------------------------------------------------------------------------


class DiskError(ReproError):
    """Base class for errors raised by the simulated drive."""


class AddressOutOfRange(DiskError):
    """A disk address does not exist on this disk shape."""


class CheckError(DiskError):
    """A check action found a mismatch and aborted the sector operation.

    Carries the part ('header', 'label', 'value') and word index at which the
    comparison failed, mirroring the hardware's abort-on-mismatch behaviour.
    """

    def __init__(self, part: str, index: int, expected: int, actual: int):
        super().__init__(
            f"check failed in {part} word {index}: expected {expected:#06x}, disk has {actual:#06x}"
        )
        self.part = part
        self.index = index
        self.expected = expected
        self.actual = actual


class LabelCheckError(CheckError):
    """A label check failed: the sector does not hold the expected page.

    This is the signal at the heart of the paper's robustness design
    (section 3.3): it fires when a hint address is stale, when an allocation
    map entry lies, or when a program tries to overwrite a page it does not
    own.
    """

    def __init__(self, index: int, expected: int, actual: int):
        CheckError.__init__(self, "label", index, expected, actual)


class BadSectorError(DiskError):
    """The sector is permanently bad (marked by the scavenger, section 3.5)."""


class SectorChecksumError(BadSectorError):
    """A sector part fails its checksum: an interrupted (torn) write left it
    half-written.  Unlike bad oxide, the part is healed by rewriting it."""

    def __init__(self, address: int, part: str):
        super().__init__(f"checksum error in {part} at address {address} (interrupted write)")
        self.address = address
        self.part = part


class PowerFailure(DiskError):
    """A simulated power failure stopped the machine.

    Raised by a :class:`~repro.disk.faults.FaultPlan` at a scheduled crash
    point; everything written before the crash point is on the platter,
    nothing after it is.  Once raised, the plan considers the machine down:
    further drive operations keep raising until ``revive()``.
    """

    def __init__(self, message: str, crash_point: int = -1):
        super().__init__(message)
        self.crash_point = crash_point


class TornWriteError(PowerFailure):
    """A simulated power failure interrupted a write mid-sector.

    The hardware contract says a begun write continues through the sector,
    so the interrupted part holds a prefix of new words followed by garbage.
    """


class TransientReadError(DiskError):
    """A read failed for a recoverable reason (dust, marginal signal).

    The drive absorbs these itself with bounded retry-with-backoff; callers
    only ever see :class:`ReadRetriesExhausted`.
    """


class ReadRetriesExhausted(DiskError):
    """Bounded retries did not clear a transient read error.

    Carries the address and the number of attempts made; the last
    :class:`TransientReadError` is chained as ``__cause__``.
    """

    def __init__(self, address: int, attempts: int):
        super().__init__(
            f"read at address {address} still failing after {attempts} attempts"
        )
        self.address = address
        self.attempts = attempts


# ---------------------------------------------------------------------------
# File-system errors
# ---------------------------------------------------------------------------


class FileSystemError(ReproError):
    """Base class for file-system-level errors."""


class HintFailed(FileSystemError):
    """A hint (disk address, cached full name, ...) proved stale.

    Section 3.6: the system "insures that when a hint fails, no damage is
    done, and the program using the hint is informed so that it can take
    corrective action."  This exception is that information.
    """


class DiskFull(FileSystemError):
    """No free page could be allocated anywhere on the disk."""


class PageNotFree(FileSystemError):
    """A page the allocation map called free turned out to be in use.

    Section 3.3: "If the map says that a page is free, the allocator marks
    it busy when allocating it, and when the label check described above
    fails, the allocator is called again to obtain another page."  This
    exception is that label-check failure, surfaced to the allocator.
    """


class FileNotFound(FileSystemError):
    """No file with the given name/serial exists (even after recovery steps)."""


class DirectoryError(FileSystemError):
    """A directory file is malformed or an entry operation failed."""


class NotADirectory(DirectoryError):
    """The file id given is not in the reserved directory subset."""


class FileFormatError(FileSystemError):
    """An on-disk structure (leader page, descriptor, ...) failed to parse."""


# ---------------------------------------------------------------------------
# Memory / zone errors
# ---------------------------------------------------------------------------


class MemoryError_(ReproError):
    """Base class for simulated-memory errors (trailing underscore avoids
    shadowing the builtin)."""


class MemoryFault(MemoryError_):
    """Word address outside the 64k space or outside a region's bounds."""


class ZoneExhausted(MemoryError_):
    """The zone has no free block large enough for the request."""


class ZoneCorrupt(MemoryError_):
    """Zone free-list invariants were violated (overlap, bad coalesce...)."""


# ---------------------------------------------------------------------------
# Stream errors
# ---------------------------------------------------------------------------


class StreamError(ReproError):
    """Base class for stream errors."""


class EndOfStream(StreamError):
    """Get was called past the last item of the stream."""


class OperationNotSupported(StreamError):
    """The stream's implementation does not provide this operation.

    A program using a non-standard operation "sacrifices compatibility"
    (section 2); this is what that sacrifice looks like at run time.
    """


# ---------------------------------------------------------------------------
# World-swap / OS errors
# ---------------------------------------------------------------------------


class WorldError(ReproError):
    """Base class for InLoad/OutLoad errors."""


class BadStateFile(WorldError):
    """A state file failed validation (bad magic, checksum, or truncation)."""


class MessageTooLong(WorldError):
    """An InLoad message exceeds the 20-word message vector (section 4.1)."""


class OSError_(ReproError):
    """Base class for operating-system-layer errors."""


class LoadError(OSError_):
    """The program loader could not load a code file."""


class FixupError(LoadError):
    """A fixup-table entry referenced an unknown system procedure."""


class JuntaError(OSError_):
    """Junta/CounterJunta misuse (bad level, nested junta, ...)."""


class CommandError(OSError_):
    """The Executive could not parse or execute a command."""


# ----------------------------------------------------------------------------
# File-server errors (repro.server)
# ----------------------------------------------------------------------------

class ServerError(ReproError):
    """Base class for file-server (``repro.server``) errors."""


class ProtocolError(ServerError):
    """A wire frame could not be encoded or decoded."""


class RequestTimeout(ServerError):
    """The client exhausted its retries without receiving a response."""


class RequestFailed(ServerError):
    """The server answered with a non-OK status code.

    Carries the :class:`~repro.server.protocol.Response` as ``response``
    and the numeric status as ``status``.
    """

    def __init__(self, message: str, response=None) -> None:
        super().__init__(message)
        self.response = response
        self.status = getattr(response, "status", None)
