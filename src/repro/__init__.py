"""repro -- a reproduction of Lampson & Sproull's Alto operating system.

"An Open Operating System for a Single-User Machine", SOSP 1979.

The package is organized the way the paper organizes the system:

* :mod:`repro.disk`    -- the simulated drive (sections 2, 3.3)
* :mod:`repro.memory`  -- 64k-word memory and zones (sections 2, 5.2)
* :mod:`repro.fs`      -- pages, files, directories, hints, scavenger (section 3)
* :mod:`repro.streams` -- OS6-style stream objects (section 2)
* :mod:`repro.world`   -- InLoad/OutLoad world swapping (section 4)
* :mod:`repro.os`      -- Junta levels, loader, Executive (section 5)
* :mod:`repro.net`     -- the packet network and printing server (section 4)
* :mod:`repro.obs`     -- simulated-time spans, metrics, trace export

The top level re-exports the objects a typical user needs; every smaller
component stays importable from its subpackage -- the openness principle
the paper is about.  See README.md for a quickstart and DESIGN.md for the
complete inventory.
"""

from . import errors, obs
from .clock import SimClock
from .obs import MetricsRegistry, Observability, Tracer
from .disk import (
    DiskDrive,
    DiskImage,
    DiskShape,
    FaultInjector,
    diablo31,
    diablo44,
    tiny_test_disk,
)
from .fs import (
    AltoFile,
    Compactor,
    ConsecutiveReader,
    Directory,
    FileSystem,
    FullName,
    HintLadder,
    KthPageHints,
    Scavenger,
    compact,
    scavenge,
)
from .memory import Memory, Region, Zone
from .os import AltoOS, CodeFile, Fixup, JuntaController, write_code_file
from .streams import (
    Stream,
    copy_stream,
    open_read_stream,
    open_write_stream,
    read_string,
    write_string,
)
from .world import (
    Halt,
    Machine,
    ProgramRegistry,
    Transfer,
    WorldEngine,
    WorldProgram,
    coroutine_call,
    create_boot_file,
    hardware_boot,
)

__version__ = "1.0.0"

__all__ = [
    "AltoFile",
    "AltoOS",
    "CodeFile",
    "Compactor",
    "ConsecutiveReader",
    "Directory",
    "DiskDrive",
    "DiskImage",
    "DiskShape",
    "FaultInjector",
    "FileSystem",
    "Fixup",
    "FullName",
    "Halt",
    "HintLadder",
    "JuntaController",
    "KthPageHints",
    "Machine",
    "Memory",
    "MetricsRegistry",
    "Observability",
    "ProgramRegistry",
    "Region",
    "Scavenger",
    "SimClock",
    "Stream",
    "Tracer",
    "Transfer",
    "WorldEngine",
    "WorldProgram",
    "Zone",
    "compact",
    "copy_stream",
    "coroutine_call",
    "create_boot_file",
    "diablo31",
    "diablo44",
    "errors",
    "hardware_boot",
    "obs",
    "open_read_stream",
    "open_write_stream",
    "read_string",
    "scavenge",
    "tiny_test_disk",
    "write_code_file",
    "write_string",
]
