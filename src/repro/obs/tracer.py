"""The span tracer: nested simulated-time spans in a ring buffer.

A span brackets a stretch of simulated time -- ``fs.read_page`` opening
``hints.direct`` opening ``disk.transfer`` -- and records where the
:class:`~repro.clock.SimClock` stood when it began and ended.  Finished
spans land in a bounded ring buffer (``collections.deque(maxlen=...)``),
oldest dropped first, so tracing a long run costs bounded memory.

Tracing is **off by default**.  When off, ``Observability.span(...)``
returns the shared :data:`NULL_SPAN` without touching the tracer, and the
instrumented code paths take the exact same clock steps -- spans only ever
*read* ``clock.now_us``, never advance it, so enabling or disabling the
tracer cannot change timing or on-disk bytes (the off-switch guarantee
tested in ``tests/obs/test_off_switch.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

DEFAULT_CAPACITY = 65536


class _NullSpan:
    """The do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **args) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class SpanEvent:
    """One finished span (or instant) as it sits in the ring buffer.

    ``kind`` is ``"span"`` (a complete event), ``"instant"`` (a marker), or
    ``"async"`` (an interval that may overlap its neighbours -- e.g. several
    requests waiting in the same queue -- exported as a Chrome ``b``/``e``
    pair instead of a nested complete event).  ``track`` selects the thread
    lane the event renders on: 0 is the clock's main lane, higher numbers
    come from :meth:`Tracer.track`.
    """

    __slots__ = ("id", "parent_id", "name", "category", "start_us", "end_us",
                 "depth", "args", "kind", "track")

    def __init__(self, id: int, parent_id: int, name: str, category: str,
                 start_us: int, end_us: int, depth: int,
                 args: Optional[Dict] = None, kind: str = "span",
                 track: int = 0) -> None:
        self.id = id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start_us = start_us
        self.end_us = end_us
        self.depth = depth
        self.args = args
        self.kind = kind
        self.track = track

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanEvent({self.name!r}, {self.start_us}..{self.end_us}us, "
                f"depth={self.depth})")


class Span:
    """An open span; use as a context manager, ``annotate(**kw)`` to tag it."""

    __slots__ = ("_tracer", "name", "category", "args", "id", "parent_id",
                 "depth", "start_us")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Optional[Dict], id: int, parent_id: int, depth: int,
                 start_us: int) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.id = id
        self.parent_id = parent_id
        self.depth = depth
        self.start_us = start_us

    def annotate(self, **args) -> "Span":
        if self.args is None:
            self.args = {}
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.annotate(error=exc_type.__name__)
        self._tracer.finish(self)
        return False


class Tracer:
    """Records spans against a simulated clock into a bounded ring."""

    def __init__(self, clock=None, capacity: int = DEFAULT_CAPACITY) -> None:
        self.clock = clock
        self.capacity = capacity
        self.enabled = False
        self.events: "deque[SpanEvent]" = deque(maxlen=capacity)
        self.dropped = 0
        self._stack: List[Span] = []
        self._next_id = 1
        self._tracks: Dict[str, int] = {}

    # -- switches -------------------------------------------------------------

    def enable(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity != self.capacity:
            self.capacity = capacity
            self.events = deque(self.events, maxlen=capacity)
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.events.clear()
        self._stack.clear()
        self.dropped = 0

    # -- recording ------------------------------------------------------------

    def now_us(self) -> int:
        return self.clock.now_us if self.clock is not None else 0

    def begin(self, name: str, category: str = "",
              args: Optional[Dict] = None) -> Span:
        span = Span(
            tracer=self,
            name=name,
            category=category,
            args=args,
            id=self._next_id,
            parent_id=self._stack[-1].id if self._stack else 0,
            depth=len(self._stack),
            start_us=self.now_us(),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        stack = self._stack
        if span in stack:
            # Tolerate out-of-order exits (an exception unwinding through
            # several spans): close everything opened after this span too.
            while stack and stack[-1] is not span:
                self.finish(stack[-1])
            stack.pop()
        if len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(SpanEvent(
            id=span.id,
            parent_id=span.parent_id,
            name=span.name,
            category=span.category,
            start_us=span.start_us,
            end_us=self.now_us(),
            depth=span.depth,
            args=span.args,
        ))

    def track(self, label: str) -> int:
        """Intern *label* as a thread lane; returns its stable track number.

        Track 0 is the clock's main lane ("simulated time"); interned
        tracks start at 1 in first-use order, so per-client request lanes
        ("client alice", "client bob") render as separate rows under the
        same process in the trace viewer.
        """
        tid = self._tracks.get(label)
        if tid is None:
            tid = self._tracks[label] = len(self._tracks) + 1
        return tid

    def track_names(self) -> Dict[int, str]:
        """``{tid: label}`` for every interned track (excludes lane 0)."""
        return {tid: label for label, tid in self._tracks.items()}

    def complete(self, name: str, start_us: int, end_us: int,
                 category: str = "", track: int = 0, kind: str = "span",
                 args: Optional[Dict] = None) -> None:
        """Record an already-finished interval directly (no stack involved).

        The retrospective twin of ``begin()``/``finish()``: code that only
        learns an interval's start after the fact -- a client matching a
        response to the request it sent polls ago -- records it here.
        ``kind="async"`` marks intervals that may overlap others on the same
        track (queue waits); the exporter emits those as ``b``/``e`` pairs.
        """
        if not self.enabled:
            return
        if len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(SpanEvent(
            id=self._next_id,
            parent_id=0,
            name=name,
            category=category,
            start_us=start_us,
            end_us=end_us,
            depth=0,
            args=args,
            kind=kind,
            track=track,
        ))
        self._next_id += 1

    def instant(self, name: str, category: str = "", **args) -> None:
        """Record a zero-duration marker (a Chrome-trace instant event)."""
        if not self.enabled:
            return
        now = self.now_us()
        if len(self.events) == self.events.maxlen:
            self.dropped += 1
        self.events.append(SpanEvent(
            id=self._next_id,
            parent_id=self._stack[-1].id if self._stack else 0,
            name=name,
            category=category,
            start_us=now,
            end_us=now,
            depth=len(self._stack),
            args=args or None,
            kind="instant",
        ))
        self._next_id += 1

    # -- introspection --------------------------------------------------------

    def spans(self) -> List[SpanEvent]:
        return [event for event in self.events if event.kind == "span"]

    def find(self, name: str) -> List[SpanEvent]:
        return [event for event in self.events if event.name == name]
