"""``python -m repro top`` -- a live text dashboard over the stats snapshot.

The renderer is a pure function from a flat (possibly cluster-merged)
metrics snapshot to a block of text: a header with elapsed simulated time
and throughput, one latency row per histogram (count, mean, and the
p50/p90/p99/p99.9 estimates out of the log buckets), and the counters
that explain a slow run (rejections, retries, flushes, queue depth).
``python -m repro top`` redraws it while a loadgen run is in flight --
the same numbers ``python -m repro stats`` prints once at the end, but
watchable, which is the paper's "open machine" applied to telemetry.

Everything here only *reads* snapshots; rendering can never perturb the
run it watches (the off-switch guarantee does not even apply -- there is
nothing to switch).
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Optional, TextIO

from .metrics import (
    QUANTILES,
    format_quantile,
    snapshot_histogram_names,
    snapshot_quantiles,
)

#: Histograms shown first, in this order, when present in the snapshot.
HEADLINE_HISTOGRAMS = (
    "server.request_us",
    "server.queue_us",
    "server.service_us",
    "router.hop_us",
    "loadgen.request_us",
)

#: Counters worth a line of their own when non-zero.
HEADLINE_COUNTERS = (
    "server.requests",
    "server.rejected",
    "server.flushes",
    "server.client.retries",
    "server.client.busy_retries",
    "router.forwarded",
    "router.rejected",
    "router.replayed",
    "router.rewrites",
    "router.scatters",
)

_CLEAR = "\x1b[2J\x1b[H"


def _fmt_us(us: float) -> str:
    """Microseconds, humanised: ``850us``, ``12.3ms``, ``4.56s``."""
    if us >= 1_000_000:
        return f"{us / 1_000_000:.2f}s"
    if us >= 1_000:
        return f"{us / 1_000:.1f}ms"
    return f"{us:.0f}us"


def render_top(stats: Dict, title: str = "repro top",
               extra: Optional[Iterable[str]] = None) -> str:
    """The dashboard for one snapshot, as a single printable string."""
    lines: List[str] = []
    now_us = int(stats.get("clock.now_us", 0))
    requests = int(stats.get("server.requests", 0))
    elapsed_s = now_us / 1_000_000.0
    rps = requests / elapsed_s if elapsed_s else 0.0
    lines.append(f"{title} -- simulated {elapsed_s:9.3f}s   "
                 f"{requests} requests   {rps:8.1f} req/s")
    lines.append("")

    names = snapshot_histogram_names(stats)
    ordered = [n for n in HEADLINE_HISTOGRAMS if n in names]
    ordered += [n for n in names if n not in HEADLINE_HISTOGRAMS]
    if ordered:
        header = (f"  {'latency':<22} {'count':>8} {'mean':>9} "
                  + " ".join(f"{format_quantile(q):>9}" for q in QUANTILES))
        lines.append(header)
        for name in ordered:
            count = int(stats.get(f"{name}.count", 0))
            total = stats.get(f"{name}.total", 0)
            mean = total / count if count else 0.0
            quantiles = snapshot_quantiles(stats, name)
            # Only *_us histograms hold microseconds; the rest (drain
            # sizes, fan-outs) print as plain numbers.
            fmt = _fmt_us if name.endswith("_us") else (lambda v: f"{v:g}")
            cells = " ".join(f"{fmt(quantiles[format_quantile(q)]):>9}"
                             for q in QUANTILES)
            lines.append(f"  {name:<22} {count:>8} {fmt(mean):>9} {cells}")
        lines.append("")

    counters = [(name, int(stats.get(name, 0))) for name in HEADLINE_COUNTERS
                if stats.get(name)]
    if counters:
        row: List[str] = []
        for name, value in counters:
            row.append(f"{name.split('.', 1)[1]}={value}")
            if len(row) == 4:
                lines.append("  " + "  ".join(f"{cell:<22}" for cell in row))
                row = []
        if row:
            lines.append("  " + "  ".join(f"{cell:<22}" for cell in row))
    depth = stats.get("server.queue.depth.high_water")
    pending = stats.get("router.pending.high_water")
    tail: List[str] = []
    if depth is not None:
        tail.append(f"queue depth high-water {int(depth)}")
    if pending is not None:
        tail.append(f"router in-flight high-water {int(pending)}")
    if tail:
        lines.append("  " + "   ".join(tail))
    for line in extra or ():
        lines.append(line)
    return "\n".join(lines) + "\n"


class TopDashboard:
    """Periodic redraw driver: call :meth:`tick` from a progress callback.

    ``interval`` is in completed requests; ``live=False`` (the CI smoke
    mode) suppresses the ANSI clear so frames append instead of repaint.
    """

    def __init__(self, snapshot, interval: int = 50, live: bool = True,
                 title: str = "repro top", out: Optional[TextIO] = None) -> None:
        self.snapshot = snapshot        #: zero-arg callable -> flat stats
        self.interval = max(1, interval)
        self.live = live
        self.title = title
        self.out = out if out is not None else sys.stdout
        self.frames = 0
        self._last_count = 0

    def tick(self, completed: int) -> None:
        """Maybe redraw: called with the running completed-request count."""
        if completed - self._last_count < self.interval:
            return
        self._last_count = completed
        self.refresh()

    def refresh(self) -> None:
        """Unconditionally render one frame."""
        frame = render_top(self.snapshot(), title=self.title)
        if self.live:
            self.out.write(_CLEAR)
        self.out.write(frame)
        self.out.flush()
        self.frames += 1
