"""Process-wide observability plumbing: trace-all mode and stats retention.

Most code reaches observability through the clock it already holds
(``clock.obs``), but the CLI needs two cross-cutting switches:

* ``enable_trace_all()`` -- every :class:`Observability` created from now
  on starts with its tracer enabled.  ``crashtest --trace`` and ``bench
  --trace`` use this because their clocks are created deep inside
  builders; ``collect_trace()`` then merges every tracer that recorded
  anything into one Chrome trace (one process row per clock).

* ``retain_stats(True)`` -- keep a strong reference to every new
  Observability so ``drain_stats()`` can merge their metric snapshots
  *after* the benchmark that created them has dropped its drive.  The
  bench harness turns this on around each run; it stays off under pytest
  (retaining a clock retains its watchers and, through the fault
  injector, whole disk images).

Both switches default off, so importing :mod:`repro` never changes
behaviour on its own.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .metrics import MetricsRegistry
from .tracer import NULL_SPAN, Tracer

DEFAULT_TRACE_ALL_CAPACITY = 16384

_trace_all = False
_trace_all_capacity: Optional[int] = None
_traced: List["Observability"] = []
_retain = False
_pending_stats: List["Observability"] = []


class Observability:
    """One clock's observability: a metrics registry plus a span tracer.

    Every :class:`~repro.clock.SimClock` owns one (``clock.obs``), so any
    component holding a clock -- which is every layer of this system --
    can open spans and bump metrics without new plumbing.  Metrics are
    always on (pure integer bookkeeping); tracing is opt-in via
    :meth:`enable_tracing` and costs nothing when off (``span`` returns
    the shared ``NULL_SPAN`` before building anything).
    """

    __slots__ = ("clock", "registry", "tracer")

    def __init__(self, clock=None, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.clock = clock
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(clock)
        _adopt(self)

    # -- tracing --------------------------------------------------------------

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def enable_tracing(self, capacity: Optional[int] = None) -> None:
        self.tracer.enable(capacity)

    def disable_tracing(self) -> None:
        self.tracer.disable()

    def span(self, name: str, category: str = "", **args):
        """Open a span; a no-op ``NULL_SPAN`` while tracing is disabled."""
        tracer = self.tracer
        if not tracer.enabled:
            return NULL_SPAN
        return tracer.begin(name, category, args or None)

    def instant(self, name: str, category: str = "", **args) -> None:
        self.tracer.instant(name, category, **args)

    # -- metrics --------------------------------------------------------------

    def counter(self, name: str):
        return self.registry.counter(name)

    def gauge(self, name: str):
        return self.registry.gauge(name)

    def histogram(self, name: str):
        return self.registry.histogram(name)

    def stats(self) -> Dict:
        """The flat stats dict: registry snapshot plus clock position/tallies."""
        flat = self.registry.snapshot()
        if self.clock is not None:
            flat["clock.now_us"] = self.clock.now_us
            for category, us in sorted(self.clock.tallies().items()):
                flat[f"clock.tally.{category}_us"] = us
        return flat


def _adopt(obs: Observability) -> None:
    if _trace_all:
        obs.enable_tracing(_trace_all_capacity)
        _traced.append(obs)
    if _retain:
        _pending_stats.append(obs)


# -- trace-all mode -----------------------------------------------------------

def enable_trace_all(capacity: int = DEFAULT_TRACE_ALL_CAPACITY) -> None:
    global _trace_all, _trace_all_capacity
    _trace_all = True
    _trace_all_capacity = capacity
    _traced.clear()


def disable_trace_all() -> None:
    global _trace_all
    _trace_all = False
    _traced.clear()


def trace_all_enabled() -> bool:
    return _trace_all


def collect_trace(stats: Optional[Dict] = None,
                  labels: Optional[Dict[int, str]] = None,
                  strip_prefixes: Iterable[str] = ()) -> Dict:
    """Merge every tracer that recorded anything into one stitched trace.

    ``labels`` renames process lanes by their creation index (``{0:
    "client alice"}``); unnamed lanes keep ``clock-<index>``.  Request
    spans annotated with ``trace_id`` are bound across lanes by flow
    events (see :func:`repro.obs.export.stitch_trace`); traces with no
    such annotations come out exactly as before.
    """
    from .export import stitch_trace

    pairs: List[Tuple[str, Tracer]] = []
    for index, obs in enumerate(_traced):
        if obs.tracer.events:
            label = labels.get(index) if labels else None
            pairs.append((label or f"clock-{index}", obs.tracer))
    if stats is None:
        stats = merge_stats(obs.stats() for obs in _traced)
    return stitch_trace(pairs, stats=stats, strip_prefixes=strip_prefixes)


# -- stats retention (bench harness) ------------------------------------------

def retain_stats(on: bool = True) -> None:
    global _retain
    _retain = on
    if not on:
        _pending_stats.clear()


def drain_stats() -> Dict:
    """Merge and forget the stats of every Observability created since the
    last drain.  Returns ``{}`` when retention is off (e.g. under pytest)."""
    merged = merge_stats(obs.stats() for obs in _pending_stats)
    _pending_stats.clear()
    return merged


def merge_stats(snapshots: Iterable[Dict]) -> Dict:
    """Combine flat stats dicts: sums, except min/max/high-water keys."""
    out: Dict = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if key not in out:
                out[key] = value
            elif key.endswith(".min"):
                out[key] = min(out[key], value)
            elif key.endswith((".max", ".high_water")) or key == "clock.now_us":
                out[key] = max(out[key], value)
            else:
                out[key] = out[key] + value
    return out
