"""``python -m repro.obs trace.json [schema.json]`` -- validate a trace."""

import sys

from .schema import main

sys.exit(main())
