"""``repro.obs`` -- the unified observability layer.

Three pieces, all zero-dependency and keyed to simulated time:

* :mod:`~repro.obs.tracer` -- nested spans (``fs.read_page`` →
  ``hints.direct`` → ``disk.transfer``) with simulated-time durations,
  recorded into a bounded ring buffer.  Off by default; the on/off switch
  provably cannot change timing or on-disk bytes.
* :mod:`~repro.obs.metrics` -- counters, gauges, and histograms in a
  parent-mirroring registry that unifies the old per-layer stats classes
  (``CacheStats``, ``LadderStats``, ``SchedulerStats``, clock tallies).
* :mod:`~repro.obs.export` / :mod:`~repro.obs.schema` -- Chrome
  ``trace_event`` JSON (Perfetto-loadable) plus a dependency-free
  validator used by CI.

Entry points: every :class:`~repro.clock.SimClock` carries an
:class:`Observability` at ``clock.obs``; the CLI exposes ``python -m
repro stats`` and ``--trace out.json`` on the REPL, ``crashtest``, and
``bench`` subcommands.  See ``OBSERVABILITY.md`` for the span taxonomy
and metric names.
"""

from .export import chrome_trace, tracer_events, write_trace
from .metrics import Counter, CounterAttr, Gauge, Histogram, MetricsRegistry
from .runtime import (
    Observability,
    collect_trace,
    disable_trace_all,
    drain_stats,
    enable_trace_all,
    merge_stats,
    retain_stats,
    trace_all_enabled,
)
from .schema import validate_trace, validate_trace_file
from .tracer import NULL_SPAN, Span, SpanEvent, Tracer

__all__ = [
    "Counter",
    "CounterAttr",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "Span",
    "SpanEvent",
    "Tracer",
    "chrome_trace",
    "collect_trace",
    "disable_trace_all",
    "drain_stats",
    "enable_trace_all",
    "merge_stats",
    "retain_stats",
    "trace_all_enabled",
    "tracer_events",
    "validate_trace",
    "validate_trace_file",
    "write_trace",
]
