"""``repro.obs`` -- the unified observability layer.

Three pieces, all zero-dependency and keyed to simulated time:

* :mod:`~repro.obs.tracer` -- nested spans (``fs.read_page`` →
  ``hints.direct`` → ``disk.transfer``) with simulated-time durations,
  recorded into a bounded ring buffer.  Off by default; the on/off switch
  provably cannot change timing or on-disk bytes.
* :mod:`~repro.obs.metrics` -- counters, gauges, and histograms in a
  parent-mirroring registry that unifies the old per-layer stats classes
  (``CacheStats``, ``LadderStats``, ``SchedulerStats``, clock tallies).
* :mod:`~repro.obs.export` / :mod:`~repro.obs.schema` -- Chrome
  ``trace_event`` JSON (Perfetto-loadable) plus a dependency-free
  validator used by CI.

Entry points: every :class:`~repro.clock.SimClock` carries an
:class:`Observability` at ``clock.obs``; the CLI exposes ``python -m
repro stats`` and ``--trace out.json`` on the REPL, ``crashtest``, and
``bench`` subcommands.  See ``OBSERVABILITY.md`` for the span taxonomy
and metric names.
"""

from .export import chrome_trace, stitch_trace, tracer_events, write_trace
from .metrics import (
    Counter,
    CounterAttr,
    Gauge,
    Histogram,
    MetricsRegistry,
    QUANTILES,
    SUB_BUCKET_BITS,
    bucket_bounds,
    bucket_index,
    format_quantile,
    quantile_from_buckets,
    snapshot_histogram_names,
    snapshot_quantiles,
)
from .runtime import (
    Observability,
    collect_trace,
    disable_trace_all,
    drain_stats,
    enable_trace_all,
    merge_stats,
    retain_stats,
    trace_all_enabled,
)
from .schema import validate_trace, validate_trace_file
from .top import TopDashboard, render_top
from .tracer import NULL_SPAN, Span, SpanEvent, Tracer

__all__ = [
    "Counter",
    "CounterAttr",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "QUANTILES",
    "SUB_BUCKET_BITS",
    "Span",
    "SpanEvent",
    "TopDashboard",
    "Tracer",
    "bucket_bounds",
    "bucket_index",
    "chrome_trace",
    "collect_trace",
    "quantile_from_buckets",
    "render_top",
    "snapshot_histogram_names",
    "snapshot_quantiles",
    "stitch_trace",
    "disable_trace_all",
    "drain_stats",
    "enable_trace_all",
    "format_quantile",
    "merge_stats",
    "retain_stats",
    "trace_all_enabled",
    "tracer_events",
    "validate_trace",
    "validate_trace_file",
    "write_trace",
]
