"""Exporters: Chrome ``trace_event`` JSON and flat stats dicts.

The trace format is the JSON Object Format from the Trace Event spec --
load the file in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``
and the simulated machine appears on a timeline: each traced clock becomes
a process row, spans nest by simulated-time containment, and span args
(addresses, rungs, drain sizes) show in the details pane.

Timestamps are simulated microseconds straight off the
:class:`~repro.clock.SimClock`, so one trace-viewer millisecond is one
simulated millisecond.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .tracer import Tracer

TracerSpec = Union[Tracer, Iterable[Tuple[str, Tracer]], Dict[str, Tracer]]


def tracer_events(tracer: Tracer, pid: int = 0, label: str = "sim") -> List[Dict]:
    """One tracer's ring buffer as a list of Chrome trace events."""
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": label}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "simulated time"}},
    ]
    for tid, name in sorted(tracer.track_names().items()):
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": name}})
    ordered = sorted(tracer.events, key=lambda e: (e.start_us, -e.end_us, e.id))
    for event in ordered:
        args: Dict = {"span_id": event.id}
        if event.parent_id:
            args["parent_id"] = event.parent_id
        if event.args:
            args.update(event.args)
        if event.kind == "instant":
            events.append({
                "name": event.name,
                "cat": event.category or "repro",
                "ph": "i",
                "ts": event.start_us,
                "s": "t",
                "pid": pid,
                "tid": event.track,
                "args": args,
            })
        elif event.kind == "async":
            # Overlapping intervals (several requests waiting in one queue)
            # become Chrome async begin/end pairs: they share a lane without
            # claiming the nesting that complete events do.
            common = {
                "name": event.name,
                "cat": event.category or "repro",
                "id": event.id,
                "pid": pid,
                "tid": event.track,
            }
            events.append(dict(common, ph="b", ts=event.start_us, args=args))
            events.append(dict(common, ph="e", ts=event.end_us, args={}))
        else:
            events.append({
                "name": event.name,
                "cat": event.category or "repro",
                "ph": "X",
                "ts": event.start_us,
                "dur": event.duration_us,
                "pid": pid,
                "tid": event.track,
                "args": args,
            })
    return events


def _normalise(tracers: TracerSpec) -> List[Tuple[str, Tracer]]:
    if isinstance(tracers, Tracer):
        return [("sim", tracers)]
    if isinstance(tracers, dict):
        return list(tracers.items())
    return list(tracers)


def chrome_trace(tracers: TracerSpec,
                 stats: Optional[Dict] = None) -> Dict:
    """Build the top-level trace object for one or more tracers.

    ``stats`` (a flat metrics snapshot) rides along under
    ``otherData.stats`` so a single file carries both the timeline and the
    counters that summarise it.
    """
    pairs = _normalise(tracers)
    events: List[Dict] = []
    dropped = 0
    for pid, (label, tracer) in enumerate(pairs):
        events.extend(tracer_events(tracer, pid=pid, label=label))
        dropped += tracer.dropped
    trace: Dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    other: Dict = {}
    if stats:
        other["stats"] = stats
    if dropped:
        other["dropped_spans"] = dropped
    if other:
        trace["otherData"] = other
    return trace


def _strip(name: str, prefixes: Iterable[str]) -> str:
    for prefix in prefixes:
        if name.startswith(prefix):
            return name[len(prefix):]
    return name


def stitch_trace(tracers: TracerSpec, stats: Optional[Dict] = None,
                 strip_prefixes: Iterable[str] = ()) -> Dict:
    """Multi-clock trace with per-request causal stitching via flow events.

    Builds :func:`chrome_trace` over several tracers (client clocks, the
    router front clock, each shard clock -- one process lane apiece), then
    walks every exported event for a ``trace_id`` annotation (the
    ``"<client>#<rid>"`` correlation key the server layer stamps on its
    spans) and binds each request's spans across lanes with Chrome flow
    events (``ph`` ``s``/``t``/``f``): the viewer draws arrows from the
    client's send through the router hop to the shard's service span and
    back.

    ``strip_prefixes`` normalises host aliases before grouping: the router
    addresses each client through a proxy host (``fileserver.alice``), so
    shard-side spans record ``fileserver.alice#12`` where the client's own
    span says ``alice#12``.  Stripping the ``fileserver.`` prefix makes
    them one trace (the rewritten ``trace_id`` is also what lands in the
    file, so the args pane shows one consistent key).
    """
    prefixes = tuple(strip_prefixes)
    trace = chrome_trace(tracers, stats=stats)
    groups: Dict[str, List[Dict]] = {}
    for event in trace["traceEvents"]:
        if event["ph"] not in ("X", "b"):
            continue
        args = event.get("args") or {}
        trace_id = args.get("trace_id")
        if not isinstance(trace_id, str):
            continue
        if prefixes:
            host, sep, rid = trace_id.partition("#")
            trace_id = args["trace_id"] = _strip(host, prefixes) + sep + rid
        groups.setdefault(trace_id, []).append(event)

    flows: List[Dict] = []
    for flow_id, trace_id in enumerate(sorted(groups), start=1):
        hops = sorted(groups[trace_id], key=lambda e: (e["ts"], e["pid"]))
        if len(hops) < 2:
            continue
        for step, event in enumerate(hops):
            phase = "s" if step == 0 else ("f" if step == len(hops) - 1 else "t")
            flow = {
                "name": trace_id,
                "cat": "request",
                "ph": phase,
                "id": flow_id,
                "ts": event["ts"],
                "pid": event["pid"],
                "tid": event["tid"],
            }
            if phase == "f":
                flow["bp"] = "e"  # bind to the enclosing slice, not the next
            flows.append(flow)
    trace["traceEvents"].extend(flows)
    return trace


def write_trace(path: str, tracers: TracerSpec,
                stats: Optional[Dict] = None, stitch: bool = False,
                strip_prefixes: Iterable[str] = ()) -> Dict:
    """Serialise :func:`chrome_trace` to ``path``; returns the trace dict.

    With ``stitch=True`` the file carries :func:`stitch_trace`'s flow
    events (and ``strip_prefixes`` host normalisation) as well.
    """
    if stitch:
        trace = stitch_trace(tracers, stats=stats, strip_prefixes=strip_prefixes)
    else:
        trace = chrome_trace(tracers, stats=stats)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return trace
