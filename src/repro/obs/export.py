"""Exporters: Chrome ``trace_event`` JSON and flat stats dicts.

The trace format is the JSON Object Format from the Trace Event spec --
load the file in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``
and the simulated machine appears on a timeline: each traced clock becomes
a process row, spans nest by simulated-time containment, and span args
(addresses, rungs, drain sizes) show in the details pane.

Timestamps are simulated microseconds straight off the
:class:`~repro.clock.SimClock`, so one trace-viewer millisecond is one
simulated millisecond.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .tracer import Tracer

TracerSpec = Union[Tracer, Iterable[Tuple[str, Tracer]], Dict[str, Tracer]]


def tracer_events(tracer: Tracer, pid: int = 0, label: str = "sim") -> List[Dict]:
    """One tracer's ring buffer as a list of Chrome trace events."""
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": label}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": "simulated time"}},
    ]
    ordered = sorted(tracer.events, key=lambda e: (e.start_us, -e.end_us, e.id))
    for event in ordered:
        args: Dict = {"span_id": event.id}
        if event.parent_id:
            args["parent_id"] = event.parent_id
        if event.args:
            args.update(event.args)
        if event.kind == "instant":
            events.append({
                "name": event.name,
                "cat": event.category or "repro",
                "ph": "i",
                "ts": event.start_us,
                "s": "t",
                "pid": pid,
                "tid": 0,
                "args": args,
            })
        else:
            events.append({
                "name": event.name,
                "cat": event.category or "repro",
                "ph": "X",
                "ts": event.start_us,
                "dur": event.duration_us,
                "pid": pid,
                "tid": 0,
                "args": args,
            })
    return events


def _normalise(tracers: TracerSpec) -> List[Tuple[str, Tracer]]:
    if isinstance(tracers, Tracer):
        return [("sim", tracers)]
    if isinstance(tracers, dict):
        return list(tracers.items())
    return list(tracers)


def chrome_trace(tracers: TracerSpec,
                 stats: Optional[Dict] = None) -> Dict:
    """Build the top-level trace object for one or more tracers.

    ``stats`` (a flat metrics snapshot) rides along under
    ``otherData.stats`` so a single file carries both the timeline and the
    counters that summarise it.
    """
    pairs = _normalise(tracers)
    events: List[Dict] = []
    dropped = 0
    for pid, (label, tracer) in enumerate(pairs):
        events.extend(tracer_events(tracer, pid=pid, label=label))
        dropped += tracer.dropped
    trace: Dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    other: Dict = {}
    if stats:
        other["stats"] = stats
    if dropped:
        other["dropped_spans"] = dropped
    if other:
        trace["otherData"] = other
    return trace


def write_trace(path: str, tracers: TracerSpec,
                stats: Optional[Dict] = None) -> Dict:
    """Serialise :func:`chrome_trace` to ``path``; returns the trace dict."""
    trace = chrome_trace(tracers, stats=stats)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return trace
