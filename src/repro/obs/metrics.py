"""The metrics registry: counters, gauges, simulated-time histograms.

One API for every tally the system keeps.  Before this module each layer
grew its own ad-hoc counter class (``CacheStats``, ``LadderStats``,
``SchedulerStats``) with duplicated as-dict and rate logic; those classes
survive as *thin views* over a :class:`MetricsRegistry`, so old call sites
keep working while ``python -m repro stats`` and the benchmark harness see
every number through one snapshot.

Registries form a tree: a per-component registry created with
``MetricsRegistry(parent=...)`` keeps its own values (a fresh
``HintLadder`` starts its rung counts at zero) *and* mirrors every update
into the parent -- typically the clock-level registry at
``clock.obs.registry`` -- so the whole machine rolls up in one place.

Metrics never touch the simulated clock or the disk: enabling, reading, or
snapshotting them cannot change timing or on-disk bytes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically adjusted running total."""

    __slots__ = ("name", "value", "_mirror", "_chain")

    def __init__(self, name: str, mirror: Optional["Counter"] = None) -> None:
        self.name = name
        self.value = 0
        self._mirror = mirror
        # The mirror chain is fixed at creation (parents exist before their
        # children), so flatten it once: inc() then updates every level in
        # one loop instead of recursing per registry generation.
        chain = [self]
        while mirror is not None:
            chain.append(mirror)
            mirror = mirror._mirror
        self._chain = chain

    def inc(self, amount: Number = 1) -> None:
        for counter in self._chain:
            counter.value += amount


class Gauge:
    """A point-in-time level, with its high-water mark."""

    __slots__ = ("name", "value", "high_water", "_mirror")

    def __init__(self, name: str, mirror: Optional["Gauge"] = None) -> None:
        self.name = name
        self.value = 0
        self.high_water = 0
        self._mirror = mirror

    def set(self, value: Number) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value
        if self._mirror is not None:
            self._mirror.set(value)


class Histogram:
    """A distribution of observed values (typically simulated microseconds).

    Keeps count/total/min/max plus power-of-two buckets: bucket *i* counts
    observations with ``value.bit_length() == i`` (bucket 0 is exactly 0).
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_mirror")

    def __init__(self, name: str, mirror: Optional["Histogram"] = None) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets: Dict[int, int] = {}
        self._mirror = mirror

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value).bit_length() if value > 0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        if self._mirror is not None:
            self._mirror.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters, gauges, and histograms, created on first use."""

    def __init__(self, parent: Optional["MetricsRegistry"] = None) -> None:
        self._metrics: Dict[str, object] = {}
        self.parent = parent

    # -- create-or-get accessors ---------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def _get_or_create(self, name: str, kind):
        metric = self._metrics.get(name)
        if metric is None:
            mirror = None
            if self.parent is not None:
                mirror = self.parent._get_or_create(name, kind)
            metric = kind(name, mirror)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    # -- introspection --------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Number]:
        """Every metric flattened into one ``name -> number`` dict.

        Gauges contribute ``name`` and ``name.high_water``; histograms
        contribute ``name.count`` / ``.total`` / ``.min`` / ``.max``.
        Derived values (rates, means) are left to the callers that want
        them, so snapshots from different registries can be merged by
        plain sum/min/max (see :func:`repro.obs.runtime.merge_stats`).
        """
        out: Dict[str, Number] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = metric.value
                out[f"{name}.high_water"] = metric.high_water
            else:
                out[f"{name}.count"] = metric.count
                out[f"{name}.total"] = metric.total
                if metric.count:
                    out[f"{name}.min"] = metric.min
                    out[f"{name}.max"] = metric.max
        return out


class CounterAttr:
    """A class attribute backed by a registry counter.

    The migration shim for the old stats classes: ``stats.hits`` keeps
    reading and ``stats.hits += 1`` keeps writing, but the number lives in
    ``stats.registry`` (and rolls up to its parent).  Assignment is applied
    as a delta so mirrored parents stay consistent.
    """

    __slots__ = ("metric",)

    def __init__(self, metric: str) -> None:
        self.metric = metric

    def _counter(self, obj) -> Counter:
        # Resolve through the registry once per (instance, metric), then
        # keep the Counter itself on the instance: stats increments sit on
        # the disk-command hot path and must not re-walk the registry.
        cache = obj.__dict__.get("_counter_cache")
        if cache is None:
            cache = {}
            obj.__dict__["_counter_cache"] = cache
        counter = cache.get(self.metric)
        if counter is None:
            counter = cache[self.metric] = obj.registry.counter(self.metric)
        return counter

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return self._counter(obj).value

    def __set__(self, obj, value) -> None:
        counter = self._counter(obj)
        counter.inc(value - counter.value)
