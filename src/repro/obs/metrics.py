"""The metrics registry: counters, gauges, simulated-time histograms.

One API for every tally the system keeps.  Before this module each layer
grew its own ad-hoc counter class (``CacheStats``, ``LadderStats``,
``SchedulerStats``) with duplicated as-dict and rate logic; those classes
survive as *thin views* over a :class:`MetricsRegistry`, so old call sites
keep working while ``python -m repro stats`` and the benchmark harness see
every number through one snapshot.

Registries form a tree: a per-component registry created with
``MetricsRegistry(parent=...)`` keeps its own values (a fresh
``HintLadder`` starts its rung counts at zero) *and* mirrors every update
into the parent -- typically the clock-level registry at
``clock.obs.registry`` -- so the whole machine rolls up in one place.

Metrics never touch the simulated clock or the disk: enabling, reading, or
snapshotting them cannot change timing or on-disk bytes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically adjusted running total."""

    __slots__ = ("name", "value", "_mirror", "_chain")

    def __init__(self, name: str, mirror: Optional["Counter"] = None) -> None:
        self.name = name
        self.value = 0
        self._mirror = mirror
        # The mirror chain is fixed at creation (parents exist before their
        # children), so flatten it once: inc() then updates every level in
        # one loop instead of recursing per registry generation.
        chain = [self]
        while mirror is not None:
            chain.append(mirror)
            mirror = mirror._mirror
        self._chain = chain

    def inc(self, amount: Number = 1) -> None:
        for counter in self._chain:
            counter.value += amount


class Gauge:
    """A point-in-time level, with its high-water mark."""

    __slots__ = ("name", "value", "high_water", "_mirror")

    def __init__(self, name: str, mirror: Optional["Gauge"] = None) -> None:
        self.name = name
        self.value = 0
        self.high_water = 0
        self._mirror = mirror

    def set(self, value: Number) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value
        if self._mirror is not None:
            self._mirror.set(value)


#: Sub-bucket resolution of the log-bucketed histograms: each power-of-two
#: octave splits into ``2**SUB_BUCKET_BITS`` equal-width buckets, so a
#: bucket's width is at most ``lower_bound / 2**SUB_BUCKET_BITS`` -- the
#: quantile estimates carry a bounded relative error of ``2**-SUB_BUCKET_BITS``
#: (12.5%).  Values below ``2**SUB_BUCKET_BITS`` get exact unit buckets.
SUB_BUCKET_BITS = 3

#: Nearest-rank quantiles the convenience accessors report.
QUANTILES = (0.50, 0.90, 0.99, 0.999)


def bucket_index(value: Number) -> int:
    """The log-bucket index for *value* (negative values clamp to bucket 0).

    >>> [bucket_index(v) for v in (0, 1, 7, 8, 15, 16, 17, 31, 32)]
    [0, 1, 7, 8, 15, 16, 16, 23, 24]
    """
    v = int(value)
    if v <= 0:
        return 0
    if v < (1 << SUB_BUCKET_BITS):
        return v
    shift = v.bit_length() - 1 - SUB_BUCKET_BITS
    return (shift << SUB_BUCKET_BITS) + (v >> shift)


def bucket_bounds(index: int) -> "tuple[int, int]":
    """The inclusive ``(lower, upper)`` value range of bucket *index*.

    >>> [bucket_bounds(i) for i in (0, 7, 8, 16, 24)]
    [(0, 0), (7, 7), (8, 8), (16, 17), (32, 35)]
    """
    sub = 1 << SUB_BUCKET_BITS
    if index < sub:
        return index, index
    shift = (index >> SUB_BUCKET_BITS) - 1
    top = index - (shift << SUB_BUCKET_BITS)
    return top << shift, ((top + 1) << shift) - 1


def quantile_from_buckets(buckets: Dict[int, int], q: float,
                          hi: Optional[Number] = None) -> float:
    """Nearest-rank quantile estimate from a ``bucket index -> count`` dict.

    Returns the upper bound of the bucket holding the rank-``ceil(q*count)``
    observation (clamped to *hi*, the true maximum, when given), so the
    estimate ``e`` of the true nearest-rank value ``v`` always satisfies
    ``v <= e <= v * (1 + 2**-SUB_BUCKET_BITS)`` for integer samples.
    """
    count = sum(buckets.values())
    if not count:
        return 0.0
    rank = min(count, max(1, math.ceil(q * count)))
    cumulative = 0
    for index in sorted(buckets):
        cumulative += buckets[index]
        if cumulative >= rank:
            upper = bucket_bounds(index)[1]
            return float(upper if hi is None else min(upper, hi))
    return float(hi) if hi is not None else 0.0


class Histogram:
    """A distribution of observed values (typically simulated microseconds).

    Keeps count/total/min/max plus **log buckets**: each power-of-two
    octave splits into ``2**SUB_BUCKET_BITS`` sub-buckets (values below
    ``2**SUB_BUCKET_BITS`` are exact), so :meth:`quantile` answers
    p50/p90/p99/p99.9 with relative error bounded by
    ``2**-SUB_BUCKET_BITS`` (12.5%) at any sample count.  Bucket counts
    ride flat metric snapshots (``name.bucket.<i>``), where plain
    summation merges them across machines -- cluster-wide percentiles come
    from the merged buckets, never from averaging per-shard percentiles.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_mirror")

    def __init__(self, name: str, mirror: Optional["Histogram"] = None) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.buckets: Dict[int, int] = {}
        self._mirror = mirror

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = bucket_index(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        if self._mirror is not None:
            self._mirror.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate (see :func:`quantile_from_buckets`).

        >>> h = Histogram("h")
        >>> for v in range(1, 101): h.observe(v)
        >>> h.quantile(0.5), h.quantile(0.99)
        (51.0, 99.0)
        """
        return quantile_from_buckets(self.buckets, q, hi=self.max)

    def percentiles(self) -> Dict[str, float]:
        """The standard report: ``{"p50": ..., "p90": ..., "p99": ..., "p99.9": ...}``."""
        return {format_quantile(q): self.quantile(q) for q in QUANTILES}


def format_quantile(q: float) -> str:
    """``0.999 -> "p99.9"``, ``0.5 -> "p50"``."""
    text = f"{q * 100:g}"
    return f"p{text}"


def snapshot_quantiles(stats: Dict[str, Number], name: str,
                       quantiles: Iterable[float] = QUANTILES) -> Dict[str, float]:
    """Quantiles of histogram *name* out of a flat (possibly merged) snapshot.

    Reconstructs the bucket counts from the ``name.bucket.<i>`` keys that
    :meth:`MetricsRegistry.snapshot` emits; because bucket counts merge by
    plain summation, this works identically on one machine's snapshot and
    on a cluster-wide :func:`repro.obs.runtime.merge_stats` result.
    Returns ``{}`` when the snapshot holds no such histogram.
    """
    prefix = f"{name}.bucket."
    buckets: Dict[int, int] = {}
    for key, value in stats.items():
        if key.startswith(prefix):
            buckets[int(key[len(prefix):])] = int(value)
    if not buckets:
        return {}
    hi = stats.get(f"{name}.max")
    return {format_quantile(q): quantile_from_buckets(buckets, q, hi=hi)
            for q in quantiles}


def snapshot_histogram_names(stats: Dict[str, Number]) -> List[str]:
    """Every histogram name that has bucket keys in *stats*, sorted."""
    names = set()
    for key in stats:
        marker = key.rfind(".bucket.")
        if marker > 0 and key[marker + len(".bucket."):].isdigit():
            names.add(key[:marker])
    return sorted(names)


class MetricsRegistry:
    """Named counters, gauges, and histograms, created on first use."""

    def __init__(self, parent: Optional["MetricsRegistry"] = None) -> None:
        self._metrics: Dict[str, object] = {}
        self.parent = parent

    # -- create-or-get accessors ---------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def _get_or_create(self, name: str, kind):
        metric = self._metrics.get(name)
        if metric is None:
            mirror = None
            if self.parent is not None:
                mirror = self.parent._get_or_create(name, kind)
            metric = kind(name, mirror)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    # -- introspection --------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Number]:
        """Every metric flattened into one ``name -> number`` dict.

        Gauges contribute ``name`` and ``name.high_water``; histograms
        contribute ``name.count`` / ``.total`` / ``.min`` / ``.max`` plus
        one ``name.bucket.<i>`` count per occupied log bucket.  Derived
        values (rates, means, quantiles) are left to the callers that want
        them, so snapshots from different registries can be merged by
        plain sum/min/max (see :func:`repro.obs.runtime.merge_stats`) --
        and cluster-wide quantiles come out of the merged buckets via
        :func:`snapshot_quantiles`.
        """
        out: Dict[str, Number] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = metric.value
                out[f"{name}.high_water"] = metric.high_water
            else:
                out[f"{name}.count"] = metric.count
                out[f"{name}.total"] = metric.total
                if metric.count:
                    out[f"{name}.min"] = metric.min
                    out[f"{name}.max"] = metric.max
                for index in sorted(metric.buckets):
                    out[f"{name}.bucket.{index}"] = metric.buckets[index]
        return out


class CounterAttr:
    """A class attribute backed by a registry counter.

    The migration shim for the old stats classes: ``stats.hits`` keeps
    reading and ``stats.hits += 1`` keeps writing, but the number lives in
    ``stats.registry`` (and rolls up to its parent).  Assignment is applied
    as a delta so mirrored parents stay consistent.
    """

    __slots__ = ("metric",)

    def __init__(self, metric: str) -> None:
        self.metric = metric

    def _counter(self, obj) -> Counter:
        # Resolve through the registry once per (instance, metric), then
        # keep the Counter itself on the instance: stats increments sit on
        # the disk-command hot path and must not re-walk the registry.
        cache = obj.__dict__.get("_counter_cache")
        if cache is None:
            cache = {}
            obj.__dict__["_counter_cache"] = cache
        counter = cache.get(self.metric)
        if counter is None:
            counter = cache[self.metric] = obj.registry.counter(self.metric)
        return counter

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return self._counter(obj).value

    def __set__(self, obj, value) -> None:
        counter = self._counter(obj)
        counter.inc(value - counter.value)
