"""Trace validation: a tiny JSON-Schema-subset checker, no dependencies.

CI's trace-smoke job runs ``python -m repro.obs.schema trace.json`` to
prove that what ``--trace`` wrote matches the checked-in contract at
``schemas/chrome_trace.schema.json``.  We support just the keywords that
schema uses -- ``type``, ``properties``, ``required``, ``items``,
``enum``, ``minimum`` -- because pulling in ``jsonschema`` is off the
table for this repo.

Beyond the schema, :func:`validate_trace` checks what a schema cannot:
that complete events carry ``ts``/``dur`` and that spans on each thread
lane (``pid``, ``tid``) nest properly (every child inside its parent,
siblings disjoint); that async intervals (``b``/``e``) and flow steps
(``s``/``t``/``f``) carry an ``id``; and that every async begin has a
matching end at or after it.  Async and flow events are exempt from the
nesting checks -- overlapping queue waits are exactly why they exist.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, name: str) -> bool:
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, _TYPES[name])


def check(instance, schema: Dict, path: str = "$",
          errors: Optional[List[str]] = None) -> List[str]:
    """Collect schema violations for ``instance``; empty list means valid."""
    if errors is None:
        errors = []
    expected = schema.get("type")
    if expected is not None:
        names = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(instance, name) for name in names):
            errors.append(f"{path}: expected {expected}, "
                          f"got {type(instance).__name__}")
            return errors
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) and instance < schema["minimum"]:
        errors.append(f"{path}: {instance} below minimum {schema['minimum']}")
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in instance:
                check(instance[key], subschema, f"{path}.{key}", errors)
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            check(item, schema["items"], f"{path}[{index}]", errors)
    return errors


def default_schema_path() -> Path:
    """The checked-in trace schema (repo-root ``schemas/`` directory)."""
    return Path(__file__).resolve().parents[3] / "schemas" / "chrome_trace.schema.json"


def load_schema(path: Optional[str] = None) -> Dict:
    schema_path = Path(path) if path else default_schema_path()
    return json.loads(schema_path.read_text(encoding="utf-8"))


def validate_trace(trace: Dict, schema: Optional[Dict] = None) -> List[str]:
    """Schema check plus structural nesting checks; returns error strings."""
    if schema is None:
        schema = load_schema()
    errors = check(trace, schema)
    if errors:
        return errors

    # Structural checks per thread lane: complete events must carry ts/dur,
    # children must sit inside their parents, siblings must not overlap.
    # Async intervals and flow steps live outside the nesting discipline but
    # must carry correlation ids (and async begins need matching ends).
    by_lane: Dict[tuple, List[Dict]] = {}
    async_open: Dict[tuple, List[float]] = {}
    for index, event in enumerate(trace.get("traceEvents", [])):
        ph = event.get("ph")
        if ph in ("b", "e", "s", "t", "f"):
            if "id" not in event:
                errors.append(f"traceEvents[{index}]: {ph!r} event missing id")
                continue
            if ph in ("b", "e"):
                key = (event["pid"], event.get("cat"), event["name"], event["id"])
                if ph == "b":
                    async_open.setdefault(key, []).append(event.get("ts", 0))
                else:
                    starts = async_open.get(key)
                    if not starts:
                        errors.append(
                            f"traceEvents[{index}]: async end without begin "
                            f"for id {event['id']}")
                    elif event.get("ts", 0) < starts.pop():
                        errors.append(
                            f"traceEvents[{index}]: async end before its "
                            f"begin for id {event['id']}")
            continue
        if ph != "X":
            continue
        if "ts" not in event or "dur" not in event:
            errors.append(f"traceEvents[{index}]: complete event missing ts/dur")
            continue
        by_lane.setdefault((event["pid"], event.get("tid", 0)), []).append(event)
    for key, starts in async_open.items():
        if starts:
            errors.append(f"async begin without end for id {key[3]} "
                          f"(pid {key[0]}, name {key[2]!r})")

    for (pid, tid), events in by_lane.items():
        spans = {}
        for event in events:
            span_id = event.get("args", {}).get("span_id")
            if span_id is not None:
                spans[span_id] = event
        children: Dict[Optional[int], List[Dict]] = {}
        for event in events:
            args = event.get("args", {})
            parent_id = args.get("parent_id")
            parent = spans.get(parent_id)
            if parent is not None:
                start, end = event["ts"], event["ts"] + event["dur"]
                p_start, p_end = parent["ts"], parent["ts"] + parent["dur"]
                if start < p_start or end > p_end:
                    errors.append(
                        f"pid {pid}: span {event['name']!r} "
                        f"[{start},{end}] escapes parent {parent['name']!r} "
                        f"[{p_start},{p_end}]")
                children.setdefault(parent_id, []).append(event)
            else:
                # Parent evicted from the ring buffer (or a true root):
                # treat as a root for the sibling check.
                children.setdefault(None, []).append(event)
        for siblings in children.values():
            ordered = sorted(siblings, key=lambda e: (e["ts"], -(e["dur"])))
            for left, right in zip(ordered, ordered[1:]):
                if right["ts"] < left["ts"] + left["dur"] \
                        and right["ts"] + right["dur"] > left["ts"] + left["dur"]:
                    errors.append(
                        f"pid {pid}: sibling spans {left['name']!r} and "
                        f"{right['name']!r} overlap without nesting")
    return errors


def validate_trace_file(path: str, schema_path: Optional[str] = None) -> List[str]:
    with open(path, "r", encoding="utf-8") as handle:
        trace = json.load(handle)
    return validate_trace(trace, load_schema(schema_path))


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or len(argv) > 2:
        print("usage: python -m repro.obs.schema trace.json [schema.json]",
              file=sys.stderr)
        return 2
    errors = validate_trace_file(argv[0], argv[1] if len(argv) == 2 else None)
    if errors:
        for error in errors:
            print(f"INVALID {error}")
        return 1
    with open(argv[0], "r", encoding="utf-8") as handle:
        count = sum(1 for e in json.load(handle)["traceEvents"]
                    if e.get("ph") == "X")
    print(f"ok: {argv[0]} valid ({count} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
